#include "vmpi/runtime.hpp"

#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"

namespace pgasm::vmpi {

namespace {

/// Record an instant event on a cached ring (caller checked ring != null).
void ring_instant(obs::RankRing* ring, int rank, const char* name,
                  const char* arg0_name = nullptr, std::uint64_t arg0 = 0,
                  const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                  const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.cat = "vmpi";
  ev.kind = obs::TraceEvent::Kind::kInstant;
  ev.rank = rank;
  ev.ts_us = obs::tracer().now_us();
  ev.arg0_name = arg0_name;
  ev.arg0 = arg0;
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  ring->record(ev);
}

/// RAII wait-span recorder for the blocking paths (recv/probe/barrier and
/// the ssend rendezvous). Records a span covering entry-to-exit — including
/// exits by TimeoutError, so timed-out waits still land in the blocked-time
/// ledger — and feeds the duration into the comm.wait_us histogram. Inert
/// when the ring is null (tracing off). Recording takes only the leaf ring
/// mutex, so finishing while a mailbox mutex is held is safe.
class WaitScope {
 public:
  WaitScope(obs::RankRing* ring, obs::Histogram* wait_us, int rank,
            const char* name)
      : ring_(ring),
        wait_us_(wait_us),
        rank_(rank),
        name_(name),
        t0_us_(ring != nullptr ? obs::tracer().now_us() : 0) {}
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;
  ~WaitScope() { finish(); }

  void arg(const char* name, std::uint64_t value) noexcept {
    for (auto& slot : args_) {
      if (slot.first == nullptr) {
        slot = {name, value};
        return;
      }
    }
  }

  void finish() noexcept {
    if (ring_ == nullptr) return;
    const std::uint64_t t1 = obs::tracer().now_us();
    obs::TraceEvent ev;
    ev.name = name_;
    ev.cat = "vmpi";
    ev.kind = obs::TraceEvent::Kind::kSpan;
    ev.rank = rank_;
    ev.ts_us = t0_us_;
    ev.dur_us = t1 > t0_us_ ? t1 - t0_us_ : 0;
    ev.arg0_name = args_[0].first;
    ev.arg0 = args_[0].second;
    ev.arg1_name = args_[1].first;
    ev.arg1 = args_[1].second;
    ev.arg2_name = args_[2].first;
    ev.arg2 = args_[2].second;
    ring_->record(ev);
    if (wait_us_ != nullptr) wait_us_->observe(ev.dur_us);
    ring_ = nullptr;
  }

 private:
  obs::RankRing* ring_;
  obs::Histogram* wait_us_;
  int rank_;
  const char* name_;
  std::uint64_t t0_us_;
  std::pair<const char*, std::uint64_t> args_[3] = {
      {nullptr, 0}, {nullptr, 0}, {nullptr, 0}};
};

/// Does a queued message match a (source, tag) request on a channel?
bool matches(const detail::Message& m, int source, std::int64_t tag,
             bool internal) {
  if (m.internal != internal) return false;
  if (source != kAnySource && m.source != source) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

/// Uniform [0,1) hash of (seed, rank, send index) for probabilistic faults.
double fault_uniform(std::uint64_t seed, int rank, std::uint64_t idx,
                     std::uint64_t salt) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (idx + 1)) ^
                        (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(rank + 1)) ^
                        salt;
  const std::uint64_t h = util::splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string rank_gone_msg(const char* what, int source, bool failed) {
  return std::string(what) + ": rank " + std::to_string(source) +
         (failed ? " failed" : " finished");
}

}  // namespace

Comm::Comm(detail::SharedState& shared, int rank)
    : shared_(&shared), rank_(rank) {
  if (obs::tracer().enabled()) {
    obs_ring_ = obs::tracer().ring(rank);
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    obs_send_bytes_ = &reg.histogram("vmpi.send_bytes", rank, phase);
    obs_recv_bytes_ = &reg.histogram("vmpi.recv_bytes", rank, phase);
    obs_wait_us_ = &reg.histogram("comm.wait_us", rank, phase);
    obs_timeouts_ = &reg.counter("vmpi.timeouts", rank, phase);
  }
}

bool Comm::apply_faults() {
  const FaultPlan& fp = shared_->faults;
  const std::uint64_t idx = ++user_send_seq_;
  if (!fp.enabled()) return false;

  for (const auto& c : fp.crashes) {
    if (c.rank == rank_ && idx >= c.at_send) {
      ++shared_->fault_counters.crashes_injected;
      if (obs_ring_ != nullptr) {
        ring_instant(obs_ring_, rank_, "fault_crash", "send_idx", idx);
      }
      throw KilledError("fault injection: rank " + std::to_string(rank_) +
                        " killed at user send " + std::to_string(idx));
    }
  }
  bool drop = false;
  double delay_s = 0;
  for (const auto& d : fp.drops) {
    if (d.rank == rank_ && d.at_send == idx) drop = true;
  }
  for (const auto& d : fp.delays) {
    if (d.rank == rank_ && d.at_send == idx) delay_s = d.seconds;
  }
  if (!drop && fp.drop_prob > 0 &&
      fault_uniform(fp.seed, rank_, idx, /*salt=*/0x1) < fp.drop_prob) {
    drop = true;
  }
  if (delay_s <= 0 && fp.delay_prob > 0 &&
      fault_uniform(fp.seed, rank_, idx, /*salt=*/0x2) < fp.delay_prob) {
    delay_s = fp.delay_seconds;
  }
  if (delay_s > 0) {
    ++shared_->fault_counters.messages_delayed;
    if (obs_ring_ != nullptr) {
      ring_instant(obs_ring_, rank_, "fault_delay", "send_idx", idx,
                   "delay_us",
                   static_cast<std::uint64_t>(delay_s * 1e6));
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
  }
  if (drop) {
    ++shared_->fault_counters.messages_dropped;
    if (obs_ring_ != nullptr) {
      ring_instant(obs_ring_, rank_, "fault_drop", "send_idx", idx);
    }
  }
  return drop;
}

bool Comm::send_preflight(int dest, std::size_t n, bool internal, bool sync) {
  if (dest < 0 || dest >= size()) throw std::runtime_error("send: bad dest");
  if (shared_->aborted.load()) throw AbortError("vmpi aborted");

  // Fault injection applies to the user channel only: a dropped or crashed
  // collective-internal message is unrecoverable by construction, whereas
  // user-level protocols are expected to tolerate these faults.
  bool drop = false;
  if (!internal) drop = apply_faults();

  // The send is charged even when the message is lost or the destination is
  // dead — the sender did the work of sending it.
  ledger_.charge_send(n, shared_->cost);
  if (!internal && obs_ring_ != nullptr) {
    obs_send_bytes_->observe(n);
    // mseq = this rank's user send index (just assigned by apply_faults):
    // (rank, mseq) names this message; the matching recv records the same
    // pair, which is what analyze and the Chrome flow arrows stitch on.
    // Recorded even for dropped/dead-destination sends so the analyzer can
    // report them as unmatched edges.
    ring_instant(obs_ring_, rank_, sync ? "ssend" : "send", "peer",
                 static_cast<std::uint64_t>(dest), "bytes", n, "mseq",
                 user_send_seq_);
  }
  if (drop) return false;
  if (shared_->dead[static_cast<std::size_t>(dest)].load()) {
    ++shared_->fault_counters.sends_to_dead;
    return false;  // synchronous sends complete immediately: no consumer
  }
  if (shared_->done[static_cast<std::size_t>(dest)].load()) {
    return false;  // receiver finished its body: discard, never block
  }
  return true;
}

void Comm::enqueue_message(int dest, detail::Message&& msg, bool sync) {
  std::shared_ptr<std::atomic<bool>> consumed;
  if (sync) {
    consumed = std::make_shared<std::atomic<bool>>(false);
    msg.consumed = consumed;
  }

  auto& box = shared_->boxes[static_cast<std::size_t>(dest)];
  util::MutexLock lock(box.mu);
  const std::uint64_t mseq = msg.send_idx;
  box.queue.push_back(std::move(msg));
  box.cv.notify_all();
  if (sync) {
    // The rendezvous wait is the synchronous sender's blocked time: span it
    // so the ledger charges it as comm wait, not compute.
    WaitScope wait_sp(obs_ring_, obs_wait_us_, rank_, "ssend_wait");
    wait_sp.arg("peer", static_cast<std::uint64_t>(dest));
    wait_sp.arg("mseq", mseq);
    // Rendezvous on the destination mailbox cv. The predicate re-checks
    // abort and destination death/completion on every wake, so a receiver
    // that never consumes cannot strand the sender (the old promise/future
    // rendezvous deadlocked here).
    box.cv.wait(box.mu, [&] {
      return consumed->load() || shared_->aborted.load() ||
             shared_->dead[static_cast<std::size_t>(dest)].load() ||
             shared_->done[static_cast<std::size_t>(dest)].load();
    });
    if (!consumed->load()) {
      if (shared_->dead[static_cast<std::size_t>(dest)].load()) {
        ++shared_->fault_counters.sends_to_dead;
        return;
      }
      if (shared_->done[static_cast<std::size_t>(dest)].load()) return;
      throw AbortError("vmpi aborted during ssend");
    }
  }
}

void Comm::send_impl(int dest, std::int64_t tag, const void* data,
                     std::size_t n, bool internal, bool sync) {
  if (!send_preflight(dest, n, internal, sync)) return;

  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.internal = internal;
  msg.send_idx = internal ? 0 : user_send_seq_;
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n);
  enqueue_message(dest, std::move(msg), sync);
}

void Comm::send_payload_impl(int dest, std::int64_t tag,
                             std::vector<std::byte>&& payload, bool sync) {
  if (!send_preflight(dest, payload.size(), /*internal=*/false, sync)) return;

  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.internal = false;
  msg.send_idx = user_send_seq_;
  msg.payload = std::move(payload);
  enqueue_message(dest, std::move(msg), sync);
}

std::vector<std::byte> Comm::recv_impl(
    int source, std::int64_t tag, bool internal, Status* status,
    const std::chrono::steady_clock::time_point* deadline) {
  // Span the whole wait (user channel only): ts is the moment this rank
  // started waiting, the end is when the message was consumed (or the wait
  // timed out — the destructor records the span on the throw paths too).
  WaitScope wait_sp(internal ? nullptr : obs_ring_, obs_wait_us_, rank_,
                    "recv");
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  util::ReleasableMutexLock lock(box.mu);
  for (;;) {
    // Both the abort flag and the dead flags are re-checked under the
    // mailbox mutex before every sleep; abort_all/mark_dead notify under
    // the same mutex, so no wake can be lost.
    if (shared_->aborted.load()) throw AbortError("vmpi aborted");
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(*it, source, tag, internal)) continue;
      detail::Message msg = std::move(*it);
      box.queue.erase(it);
      if (msg.consumed) {
        msg.consumed->store(true);
        box.cv.notify_all();  // wake the rendezvoused synchronous sender
      }
      lock.release();
      ledger_.charge_recv(msg.payload.size(), shared_->cost);
      if (!internal && obs_ring_ != nullptr) {
        obs_recv_bytes_->observe(msg.payload.size());
        wait_sp.arg("peer", static_cast<std::uint64_t>(msg.source));
        wait_sp.arg("bytes", msg.payload.size());
        wait_sp.arg("mseq", msg.send_idx);
      }
      wait_sp.finish();
      if (status) {
        status->source = msg.source;
        status->tag = static_cast<int>(msg.tag);
        status->bytes = msg.payload.size();
      }
      return std::move(msg.payload);
    }
    // No match queued. A specific failed or finished source can never
    // deliver: fail fast instead of blocking until the deadline (forever).
    if (source != kAnySource && source != rank_ &&
        (shared_->dead[static_cast<std::size_t>(source)].load() ||
         shared_->done[static_cast<std::size_t>(source)].load())) {
      const bool failed = shared_->dead[static_cast<std::size_t>(source)].load();
      if (deadline) {
        ++shared_->fault_counters.timeouts_fired;
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "recv_timeout", "peer",
                       static_cast<std::uint64_t>(source), "peer_gone", 1);
        }
        throw TimeoutError(rank_gone_msg("recv", source, failed));
      }
      throw AbortError(rank_gone_msg("recv", source, failed));
    }
    if (deadline) {
      if (std::chrono::steady_clock::now() >= *deadline) {
        ++shared_->fault_counters.timeouts_fired;
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "recv_timeout", "peer",
                       static_cast<std::uint64_t>(source));
        }
        throw TimeoutError("recv: timeout (source " + std::to_string(source) +
                           ", tag " + std::to_string(tag) + ")");
      }
      box.cv.wait_until(box.mu, *deadline);
    } else {
      box.cv.wait(box.mu);
    }
  }
}

std::vector<std::byte> Comm::recv(int source, int tag, Status* status) {
  return recv_impl(source, tag, /*internal=*/false, status);
}

std::vector<std::byte> Comm::recv_timeout(int source, int tag,
                                          double timeout_s, Status* status) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  return recv_impl(source, tag, /*internal=*/false, status, &deadline);
}

Status Comm::probe_impl(int source, int tag,
                        const std::chrono::steady_clock::time_point* deadline) {
  WaitScope wait_sp(obs_ring_, obs_wait_us_, rank_, "probe");
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  util::MutexLock lock(box.mu);
  for (;;) {
    if (shared_->aborted.load()) throw AbortError("vmpi aborted");
    for (const auto& m : box.queue) {
      if (matches(m, source, tag, /*internal=*/false)) {
        // The probed message stays queued; stamping its (peer, mseq) lets
        // the analyzer jump probe waits to the sender like recv waits.
        wait_sp.arg("peer", static_cast<std::uint64_t>(m.source));
        wait_sp.arg("bytes", m.payload.size());
        wait_sp.arg("mseq", m.send_idx);
        wait_sp.finish();
        return Status{m.source, static_cast<int>(m.tag), m.payload.size()};
      }
    }
    if (source != kAnySource && source != rank_ &&
        (shared_->dead[static_cast<std::size_t>(source)].load() ||
         shared_->done[static_cast<std::size_t>(source)].load())) {
      const bool failed = shared_->dead[static_cast<std::size_t>(source)].load();
      if (deadline) {
        ++shared_->fault_counters.timeouts_fired;
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "probe_timeout", "peer",
                       static_cast<std::uint64_t>(source), "peer_gone", 1);
        }
        throw TimeoutError(rank_gone_msg("probe", source, failed));
      }
      throw AbortError(rank_gone_msg("probe", source, failed));
    }
    if (deadline) {
      if (std::chrono::steady_clock::now() >= *deadline) {
        ++shared_->fault_counters.timeouts_fired;
        if (obs_ring_ != nullptr) {
          obs_timeouts_->inc();
          ring_instant(obs_ring_, rank_, "probe_timeout", "peer",
                       static_cast<std::uint64_t>(source));
        }
        throw TimeoutError("probe: timeout (source " + std::to_string(source) +
                           ", tag " + std::to_string(tag) + ")");
      }
      box.cv.wait_until(box.mu, *deadline);
    } else {
      box.cv.wait(box.mu);
    }
  }
}

Status Comm::probe(int source, int tag) {
  return probe_impl(source, tag, nullptr);
}

Status Comm::probe_timeout(int source, int tag, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  return probe_impl(source, tag, &deadline);
}

bool Comm::iprobe(int source, int tag, Status* status) {
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  util::MutexLock lock(box.mu);
  if (shared_->aborted.load()) throw AbortError("vmpi aborted");
  for (const auto& m : box.queue) {
    if (matches(m, source, tag, /*internal=*/false)) {
      if (status) {
        status->source = m.source;
        status->tag = static_cast<int>(m.tag);
        status->bytes = m.payload.size();
      }
      return true;
    }
  }
  return false;
}

void Comm::barrier() {
  // A barrier is pure wait from the ledger's point of view: the token
  // exchange itself is microseconds, the span is dominated by waiting for
  // the slowest rank to arrive.
  WaitScope sp(obs_ring_, obs_wait_us_, rank_, "barrier");
  // Dissemination barrier: ceil(log2 p) rounds, in round k exchange a token
  // with the ranks at distance 2^k.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  char token = 1;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    send_impl(to, base_tag + round, &token, 1, /*internal=*/true,
              /*sync=*/false);
    (void)recv_impl(from, base_tag + round, /*internal=*/true, nullptr);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  // Binomial tree broadcast on virtual ranks.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      const int parent = ((vr - mask) + root) % p;
      data = recv_impl(parent, base_tag, /*internal=*/true, nullptr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p && (vr & (mask - 1)) == 0 && (vr & mask) == 0) {
      const int child = ((vr + mask) + root) % p;
      send_impl(child, base_tag, data.data(), data.size(), /*internal=*/true,
                /*sync=*/false);
    }
    mask >>= 1;
  }
}

Runtime::Runtime(int num_ranks, CostParams cost, FaultPlan faults)
    : shared_(std::make_unique<detail::SharedState>(num_ranks, cost,
                                                    std::move(faults))) {
  if (num_ranks < 1) throw std::runtime_error("Runtime: num_ranks < 1");
}

Runtime::~Runtime() = default;

RunCost Runtime::run(const std::function<void(Comm&)>& body) {
  const int p = shared_->num_ranks;
  // Fresh state per run: clear mailboxes, abort flag, dead flags, counters.
  shared_->aborted.store(false);
  for (auto& d : shared_->dead) d.store(false);
  for (auto& d : shared_->done) d.store(false);
  shared_->fault_counters.reset();
  for (auto& box : shared_->boxes) {
    util::MutexLock lock(box.mu);
    box.queue.clear();
  }

  // The caller's thread blocks here until every rank thread finishes; span
  // that as a "join" wait so the analyzer can hand the critical path from
  // the driver to the slowest rank instead of dead-ending on the driver.
  WaitScope join_sp(
      obs::tracer().enabled() ? obs::tracer().ring(obs::kDriverTid) : nullptr,
      obs::tracer().enabled()
          ? &obs::registry().histogram("comm.wait_us", obs::kDriverTid,
                                       obs::current_phase())
          : nullptr,
      obs::kDriverTid, "join");
  join_sp.arg("ranks", static_cast<std::uint64_t>(p));

  RunCost cost;
  cost.per_rank.resize(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  util::Mutex error_mu;
  std::exception_ptr first_error;  // written once under error_mu

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      util::set_log_rank(r);
      Comm comm(*shared_, r);
      try {
        body(comm);
        // Normal return: complete any synchronous sends still rendezvoused
        // on this rank's mailbox so no peer hangs on a message this rank
        // will never consume.
        shared_->mark_done(r);
      } catch (const KilledError&) {
        // Injected crash: this rank dies quietly. Survivors observe the
        // failure via timeouts / rank_failed, not a run-wide abort.
        shared_->mark_dead(r);
      } catch (...) {
        {
          util::MutexLock lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        shared_->abort_all();
      }
      cost.per_rank[static_cast<std::size_t>(r)] = comm.ledger();
    });
  }
  for (auto& t : threads) t.join();
  join_sp.finish();
  cost.faults = shared_->fault_counters.snapshot();

  // Publish the run's cost ledgers into the metrics registry so the ad-hoc
  // RunCost/FaultStats structs and the obs export agree by construction.
  if (obs::tracer().enabled()) {
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    for (int r = 0; r < p; ++r) {
      const RankLedger& l = cost.per_rank[static_cast<std::size_t>(r)];
      reg.counter("vmpi.msgs_sent", r, phase).inc(l.msgs_sent);
      reg.counter("vmpi.bytes_sent", r, phase).inc(l.bytes_sent);
      reg.counter("vmpi.msgs_recv", r, phase).inc(l.msgs_recv);
      reg.counter("vmpi.bytes_recv", r, phase).inc(l.bytes_recv);
      reg.gauge("vmpi.compute_seconds", r, phase).add(l.compute_seconds);
      reg.gauge("vmpi.comm_seconds", r, phase).add(l.comm_seconds);
    }
    const FaultStats& fs = cost.faults;
    reg.counter("vmpi.faults.crashes_injected", obs::kNoRank, phase)
        .inc(fs.crashes_injected);
    reg.counter("vmpi.faults.messages_dropped", obs::kNoRank, phase)
        .inc(fs.messages_dropped);
    reg.counter("vmpi.faults.messages_delayed", obs::kNoRank, phase)
        .inc(fs.messages_delayed);
    reg.counter("vmpi.faults.sends_to_dead", obs::kNoRank, phase)
        .inc(fs.sends_to_dead);
    reg.counter("vmpi.faults.timeouts_fired", obs::kNoRank, phase)
        .inc(fs.timeouts_fired);
    reg.counter("vmpi.faults.ranks_failed", obs::kNoRank, phase)
        .inc(fs.ranks_failed);
  }

  if (first_error) {
    try {
      std::rethrow_exception(first_error);
    } catch (const AbortError&) {
      // A secondary abort got recorded first; report generically.
      throw std::runtime_error("vmpi run aborted");
    }
  }
  return cost;
}

}  // namespace pgasm::vmpi
