#include "vmpi/runtime.hpp"

#include <thread>

namespace pgasm::vmpi {

namespace {

/// Does a queued message match a (source, tag) request on a channel?
bool matches(const detail::Message& m, int source, std::int64_t tag,
             bool internal) {
  if (m.internal != internal) return false;
  if (source != kAnySource && m.source != source) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

}  // namespace

void Comm::send_impl(int dest, std::int64_t tag, const void* data,
                     std::size_t n, bool internal, bool sync) {
  if (dest < 0 || dest >= size()) throw std::runtime_error("send: bad dest");
  if (shared_->aborted.load()) throw AbortError("vmpi aborted");

  detail::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.internal = internal;
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n);

  std::shared_ptr<std::promise<void>> done;
  std::future<void> done_future;
  if (sync) {
    done = std::make_shared<std::promise<void>>();
    done_future = done->get_future();
    msg.consumed = done;
  }

  ledger_.charge_send(n, shared_->cost);

  auto& box = shared_->boxes[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
    box.cv.notify_all();
  }
  if (sync) done_future.wait();
}

std::vector<std::byte> Comm::recv_impl(int source, std::int64_t tag,
                                       bool internal, Status* status) {
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    if (shared_->aborted.load()) throw AbortError("vmpi aborted");
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(*it, source, tag, internal)) continue;
      detail::Message msg = std::move(*it);
      box.queue.erase(it);
      lock.unlock();
      if (msg.consumed) msg.consumed->set_value();
      ledger_.charge_recv(msg.payload.size(), shared_->cost);
      if (status) {
        status->source = msg.source;
        status->tag = static_cast<int>(msg.tag);
        status->bytes = msg.payload.size();
      }
      return std::move(msg.payload);
    }
    box.cv.wait(lock);
  }
}

std::vector<std::byte> Comm::recv(int source, int tag, Status* status) {
  return recv_impl(source, tag, /*internal=*/false, status);
}

Status Comm::probe(int source, int tag) {
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    if (shared_->aborted.load()) throw AbortError("vmpi aborted");
    for (const auto& m : box.queue) {
      if (matches(m, source, tag, /*internal=*/false)) {
        return Status{m.source, static_cast<int>(m.tag), m.payload.size()};
      }
    }
    box.cv.wait(lock);
  }
}

bool Comm::iprobe(int source, int tag, Status* status) {
  auto& box = shared_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.mu);
  if (shared_->aborted.load()) throw AbortError("vmpi aborted");
  for (const auto& m : box.queue) {
    if (matches(m, source, tag, /*internal=*/false)) {
      if (status) {
        status->source = m.source;
        status->tag = static_cast<int>(m.tag);
        status->bytes = m.payload.size();
      }
      return true;
    }
  }
  return false;
}

void Comm::barrier() {
  // Dissemination barrier: ceil(log2 p) rounds, in round k exchange a token
  // with the ranks at distance 2^k.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  char token = 1;
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    send_impl(to, base_tag + round, &token, 1, /*internal=*/true,
              /*sync=*/false);
    (void)recv_impl(from, base_tag + round, /*internal=*/true, nullptr);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  // Binomial tree broadcast on virtual ranks.
  const int p = size();
  const std::int64_t base_tag = next_collective_tag();
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      const int parent = ((vr - mask) + root) % p;
      data = recv_impl(parent, base_tag, /*internal=*/true, nullptr);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p && (vr & (mask - 1)) == 0 && (vr & mask) == 0) {
      const int child = ((vr + mask) + root) % p;
      send_impl(child, base_tag, data.data(), data.size(), /*internal=*/true,
                /*sync=*/false);
    }
    mask >>= 1;
  }
}

Runtime::Runtime(int num_ranks, CostParams cost)
    : shared_(std::make_unique<detail::SharedState>(num_ranks, cost)) {
  if (num_ranks < 1) throw std::runtime_error("Runtime: num_ranks < 1");
}

Runtime::~Runtime() = default;

RunCost Runtime::run(const std::function<void(Comm&)>& body) {
  const int p = shared_->num_ranks;
  // Fresh state per run: clear mailboxes and abort flag.
  shared_->aborted.store(false);
  for (auto& box : shared_->boxes) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.clear();
  }

  RunCost cost;
  cost.per_rank.resize(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex error_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      Comm comm(*shared_, r);
      try {
        body(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        shared_->abort_all();
      }
      cost.per_rank[static_cast<std::size_t>(r)] = comm.ledger();
    });
  }
  for (auto& t : threads) t.join();

  if (first_error) {
    try {
      std::rethrow_exception(first_error);
    } catch (const AbortError&) {
      // A secondary abort got recorded first; report generically.
      throw std::runtime_error("vmpi run aborted");
    }
  }
  return cost;
}

}  // namespace pgasm::vmpi
