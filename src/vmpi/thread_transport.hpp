// The original in-process vmpi transport: ranks are threads of one process,
// each with a mutex+cv mailbox holding a deque of messages. Synchronous
// sends rendezvous on the destination mailbox cv via the message's consumed
// flag. This is the default transport and the behavior baseline every other
// transport must match (liveness semantics, fail-fast rules, counter
// accounting).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"
#include "vmpi/transport.hpp"

namespace pgasm::vmpi {

namespace detail {

struct Mailbox {
  util::Mutex mu;
  util::CondVar cv;
  std::deque<Message> queue PGASM_GUARDED_BY(mu);
};

}  // namespace detail

class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(int num_ranks);

  TransportKind kind() const noexcept override {
    return TransportKind::kThread;
  }
  int num_ranks() const noexcept override { return num_ranks_; }

  // Acquire pairs with the release stores in mark_dead/mark_done/abort_all:
  // whoever observes the flag also observes everything the marking thread
  // wrote before it (e.g. a finishing rank's last sends).
  bool is_dead(int rank) const noexcept override {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  bool is_done(int rank) const noexcept override {
    return done_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  bool is_aborted() const noexcept override {
    return aborted_.load(std::memory_order_acquire);
  }

  void mark_dead(int rank) override;
  void mark_done(int rank) override;
  void abort_all() override;
  detail::FaultCounters& counters() noexcept override { return counters_; }

  void deliver(int self, int dest, detail::Message&& msg, bool sync) override;
  Wait recv(int self, int source, std::int64_t tag, bool internal,
            const std::chrono::steady_clock::time_point* deadline,
            detail::Message* out) override;
  Wait probe(int self, int source, std::int64_t tag,
             const std::chrono::steady_clock::time_point* deadline,
             ProbeResult* out) override;
  bool iprobe(int self, int source, std::int64_t tag,
              ProbeResult* out) override;
  [[noreturn]] void crash_self(int self, const std::string& why) override;

  /// Fresh state for the next run: clears the abort flag, liveness flags,
  /// fault counters and every queued message.
  void reset();

 private:
  int num_ranks_;
  std::vector<detail::Mailbox> boxes_;
  std::vector<std::atomic<bool>> dead_;
  std::vector<std::atomic<bool>> done_;  ///< body returned normally
  std::atomic<bool> aborted_{false};
  detail::FaultCounters counters_;
};

}  // namespace pgasm::vmpi
