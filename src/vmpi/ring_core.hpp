// The SPSC ring push/pop core, extracted from proc_transport.cpp so the
// exact production algorithm can be model-checked. The ring protocol
// (see shm_ring.hpp): head and tail are monotonic u64 *byte* counters that
// never wrap — byte x lives at buf[x % cap]. The head cursor is
// consumer-owned (only try_pop stores it), the tail cursor is
// producer-owned (only try_push stores it); each side release-stores its
// own cursor only after the bytes it covers are in place, and
// acquire-loads the other side's cursor before touching the bytes it
// publishes. A producer killed mid-push therefore never exposes torn
// bytes: tail still covers only fully-written data.
//
// The code is parameterized over an atomics facade so two builds share one
// algorithm:
//   - the real transport instantiates RingCore<StdRingFacade> below
//     (plain std::atomic with the declared memory orders), and
//   - tools/verify/pgasm-ringcheck instantiates it with a virtual-scheduler
//     facade that enumerates producer/consumer interleavings and checks the
//     declared orders under the C++ memory model (DESIGN.md §15).
// Every facade call names the intended memory order AND the syntactic site,
// so the checker can weaken one site at a time and prove the weakening is
// caught.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pgasm::vmpi {

/// The six atomic accesses in the ring core, named so a checker facade can
/// override the memory order of exactly one of them (mutation testing).
enum class RingSite : std::uint8_t {
  kPushLoadHead,   ///< producer reads consumer progress (acquire)
  kPushLoadTail,   ///< producer reads its own cursor (relaxed: owned)
  kPushStoreTail,  ///< producer publishes written bytes (release)
  kPopLoadTail,    ///< consumer reads producer progress (acquire)
  kPopLoadHead,    ///< consumer reads its own cursor (relaxed: owned)
  kPopStoreHead,   ///< consumer returns reclaimed space (release)
};

/// The memory order each site intends. A facade maps these onto real
/// std::memory_order values (StdRingFacade) or onto simulated
/// happens-before edges (the checker).
enum class RingOrder : std::uint8_t { kRelaxed, kAcquire, kRelease };

/// The SPSC byte-ring algorithm over an atomics facade `F`. `F` supplies:
///   using AtomicU64 = ...;  // the cursor cell type
///   std::uint64_t load(AtomicU64&, RingOrder, RingSite);
///   void store(AtomicU64&, std::uint64_t, RingOrder, RingSite);
///   void copy(std::byte* dst, const std::byte* src, std::size_t n);
template <class F>
struct RingCore {
  using AtomicU64 = typename F::AtomicU64;

  /// Producer side: append up to `n` bytes of `src`; returns how many were
  /// written (0 when the ring is full). Never blocks.
  static std::size_t try_push(F& f, AtomicU64& head, AtomicU64& tail,
                              std::byte* buf, std::size_t cap,
                              const std::byte* src, std::size_t n) {
    // Acquire on head: the consumer's release-store of head published that
    // it finished *reading* [old_head, head) — we must see those reads
    // complete before overwriting the reclaimed slots.
    const std::uint64_t h = f.load(head, RingOrder::kAcquire,
                                   RingSite::kPushLoadHead);
    // Tail is producer-owned: nobody else stores it, relaxed is enough.
    const std::uint64_t t = f.load(tail, RingOrder::kRelaxed,
                                   RingSite::kPushLoadTail);
    const std::size_t space = cap - static_cast<std::size_t>(t - h);
    if (space == 0) return 0;
    const std::size_t chunk = n < space ? n : space;
    const std::size_t pos = static_cast<std::size_t>(t % cap);
    const std::size_t first = chunk < cap - pos ? chunk : cap - pos;
    f.copy(buf + pos, src, first);
    f.copy(buf, src + first, chunk - first);
    // Release on tail: the bytes above must be visible before the new tail
    // is — a consumer that acquire-loads the new tail may read them.
    f.store(tail, t + chunk, RingOrder::kRelease, RingSite::kPushStoreTail);
    return chunk;
  }

  /// Consumer side: copy out up to `want` bytes into `dst`; returns how
  /// many were read (0 when the ring is empty). Never blocks.
  static std::size_t try_pop(F& f, AtomicU64& head, AtomicU64& tail,
                             const std::byte* buf, std::size_t cap,
                             std::byte* dst, std::size_t want) {
    // Acquire on tail: pairs with the producer's release-store — the bytes
    // covered by the loaded tail are fully written.
    const std::uint64_t t = f.load(tail, RingOrder::kAcquire,
                                   RingSite::kPopLoadTail);
    // Head is consumer-owned: nobody else stores it, relaxed is enough.
    const std::uint64_t h = f.load(head, RingOrder::kRelaxed,
                                   RingSite::kPopLoadHead);
    const std::size_t avail = static_cast<std::size_t>(t - h);
    if (avail == 0) return 0;
    const std::size_t chunk = want < avail ? want : avail;
    const std::size_t pos = static_cast<std::size_t>(h % cap);
    const std::size_t first = chunk < cap - pos ? chunk : cap - pos;
    f.copy(dst, buf + pos, first);
    f.copy(dst + first, buf, chunk - first);
    // Release on head: our reads of the consumed slots must complete
    // before the producer (acquire on head) may overwrite them.
    f.store(head, h + chunk, RingOrder::kRelease, RingSite::kPopStoreHead);
    return chunk;
  }
};

/// The production facade: plain std::atomic with the declared orders; the
/// site argument exists only for the checker and is ignored here.
struct StdRingFacade {
  using AtomicU64 = std::atomic<std::uint64_t>;

  static constexpr std::memory_order to_memory_order(RingOrder o) noexcept {
    switch (o) {
      case RingOrder::kRelaxed:
        return std::memory_order_relaxed;
      case RingOrder::kAcquire:
        return std::memory_order_acquire;
      case RingOrder::kRelease:
        return std::memory_order_release;
    }
    return std::memory_order_seq_cst;  // unreachable; keeps the switch total
  }

  std::uint64_t load(const AtomicU64& a, RingOrder order, RingSite) const {
    return a.load(to_memory_order(order));
  }
  void store(AtomicU64& a, std::uint64_t v, RingOrder order, RingSite) const {
    a.store(v, to_memory_order(order));
  }
  void copy(std::byte* dst, const std::byte* src, std::size_t n) const {
    if (n != 0) std::memcpy(dst, src, n);
  }
};

using StdRing = RingCore<StdRingFacade>;

}  // namespace pgasm::vmpi
