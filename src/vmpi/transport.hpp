// The vmpi transport seam: everything below the rank-facing Comm API.
//
// Comm owns the *protocol* half of the runtime — fault injection, cost
// ledger charges, obs instrumentation (send/recv instants, wait spans,
// timeout counters), typed wrappers and the collectives — all of which are
// transport-agnostic. A Transport owns the *mechanism* half: moving framed
// messages between ranks, the liveness flags (dead/done/aborted) peers probe
// against, the blocking waits, and how an injected crash actually kills a
// rank. Two implementations exist:
//
//   * ThreadTransport (thread_transport.hpp) — the original in-process
//     mailbox machinery, ranks as threads sharing one address space. The
//     default, and what every test means unless it opts in to "proc".
//   * ProcTransport (proc_transport.hpp) — ranks as real forked OS
//     processes exchanging messages over shared-memory SPSC byte rings,
//     one ring per ordered rank pair. Crash injection delivers a real
//     SIGKILL; per-process obs state is shipped back in per-rank blob
//     files and merged post-run.
//
// Selection is by name ("thread" / "proc"), resolved at runtime from
// ClusterParams::transport / --transport= / the PGASM_TRANSPORT environment
// variable. The plain Runtime(num_ranks, cost, faults) constructor always
// builds the thread transport so existing call sites and tests are
// untouched by the refactor.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "vmpi/cost_model.hpp"

namespace pgasm::vmpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown on all ranks when any rank's body throws, so no rank deadlocks.
struct AbortError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown by recv_timeout/probe_timeout when the deadline passes or the
/// awaited source rank has failed. Distinct from AbortError: a timeout is
/// local and recoverable (the caller may retry, reassign work, or declare
/// the peer dead); an abort is global and fatal to the run.
struct TimeoutError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Thrown inside a rank to simulate its crash (used by FaultPlan). The
/// Runtime terminates only that rank: its thread exits (or, on the process
/// transport, the child process is killed with a real SIGKILL), the rank is
/// marked failed, and the run continues on the survivors.
struct KilledError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class TransportKind { kThread, kProc };

/// Canonical name of a transport kind ("thread" / "proc").
const char* transport_name(TransportKind kind) noexcept;

/// Resolve a transport selection string: "thread" and "proc" name the
/// backends; "" defers to the PGASM_TRANSPORT environment variable and
/// falls back to the thread transport when that is unset or empty. Any
/// other value throws std::runtime_error (listing the valid names).
TransportKind resolve_transport(const std::string& name);

namespace detail {

struct Message {
  int source = 0;
  std::int64_t tag = 0;  ///< user tags are >= 0 and < 2^31; internal larger
  bool internal = false;
  /// Sender's 1-based user-channel send index (0 for collective-internal
  /// traffic). (source, send_idx) identifies a user message uniquely; the
  /// tracer stamps it as the "mseq" arg on both the send and recv events,
  /// which is what obs::analyze stitches cross-rank causal edges from.
  std::uint64_t send_idx = 0;
  std::vector<std::byte> payload;
  /// Synchronous (ssend) message. The proc transport carries it in the wire
  /// frame so the receiver knows to write the shared ack slot at consume
  /// time; the thread transport signals sync via `consumed` instead.
  bool sync = false;
  /// Set for ssend rendezvous on the thread transport: flipped true when
  /// the receiver consumes the message (or the destination rank dies), then
  /// the destination mailbox cv is notified. A plain atomic + cv (not a
  /// promise) so abort_all and rank death can wake a blocked synchronous
  /// sender. The process transport acknowledges through a shared-memory
  /// slot instead and leaves this null.
  std::shared_ptr<std::atomic<bool>> consumed;
};

/// Does a queued message match a (source, tag) request on a channel?
inline bool matches(const Message& m, int source, std::int64_t tag,
                    bool internal) noexcept {
  if (m.internal != internal) return false;
  if (source != kAnySource && m.source != source) return false;
  if (tag != kAnyTag && m.tag != tag) return false;
  return true;
}

/// Run-wide fault bookkeeping (atomics: touched from every rank thread; on
/// the process transport the instance lives in shared memory so every
/// process updates the same counters).
struct FaultCounters {
  std::atomic<std::uint64_t> crashes_injected{0};
  std::atomic<std::uint64_t> messages_dropped{0};
  std::atomic<std::uint64_t> messages_delayed{0};
  std::atomic<std::uint64_t> sends_to_dead{0};
  std::atomic<std::uint64_t> timeouts_fired{0};
  std::atomic<std::uint64_t> ranks_failed{0};

  // Statistics only, never synchronization: every access is relaxed (and
  // names its order explicitly — pgasm-lint W014). Cross-thread visibility
  // of the final values is given by the joins/exit-blob merges that precede
  // every snapshot() read.
  void reset() noexcept {
    crashes_injected.store(0, std::memory_order_relaxed);
    messages_dropped.store(0, std::memory_order_relaxed);
    messages_delayed.store(0, std::memory_order_relaxed);
    sends_to_dead.store(0, std::memory_order_relaxed);
    timeouts_fired.store(0, std::memory_order_relaxed);
    ranks_failed.store(0, std::memory_order_relaxed);
  }
  FaultStats snapshot() const noexcept {
    return FaultStats{crashes_injected.load(std::memory_order_relaxed),
                      messages_dropped.load(std::memory_order_relaxed),
                      messages_delayed.load(std::memory_order_relaxed),
                      sends_to_dead.load(std::memory_order_relaxed),
                      timeouts_fired.load(std::memory_order_relaxed),
                      ranks_failed.load(std::memory_order_relaxed)};
  }
};

}  // namespace detail

/// Metadata of a matchable message seen by probe/iprobe (the message stays
/// queued in the transport).
struct ProbeResult {
  int source = 0;
  std::int64_t tag = 0;
  std::size_t bytes = 0;
  std::uint64_t send_idx = 0;
};

/// Mechanism interface between Comm and a message-moving backend. All
/// methods are called from the rank's own execution context (its thread, or
/// its process on the proc transport) except the liveness queries and
/// mark_dead/mark_done/abort_all, which any rank — or the parent's monitor
/// thread — may call concurrently.
///
/// Contract notes shared by both implementations:
///   * deliver() enqueues a message for dest. For sync (ssend rendezvous)
///     it blocks until the destination consumed the message, the
///     destination is dead/finished, or the run aborted; a post-enqueue
///     death counts into counters().sends_to_dead (preflight-detected death
///     is the caller's job), a post-enqueue finish returns silently, and an
///     abort throws AbortError("vmpi aborted during ssend").
///   * recv()/probe() block until a matching message is available
///     (kMessage), the deadline passes (kTimeout), a specifically-awaited
///     source is dead/finished with nothing matching queued (kPeerGone), or
///     the run aborts (throws AbortError("vmpi aborted")). The caller owns
///     all timeout counting, obs instants and error phrasing.
///   * recv() acknowledges a consumed synchronous message (flips the
///     consumed flag / writes the shm ack slot); probe does not consume.
///   * crash_self() is how an injected crash kills the calling rank:
///     KilledError on the thread transport, a real SIGKILL of the child
///     process on the proc transport (the parent-resident rank 0 falls back
///     to KilledError — there is no separate process to kill).
class Transport {
 public:
  enum class Wait { kMessage, kTimeout, kPeerGone };

  virtual ~Transport() = default;

  virtual TransportKind kind() const noexcept = 0;
  virtual int num_ranks() const noexcept = 0;

  virtual bool is_dead(int rank) const noexcept = 0;
  virtual bool is_done(int rank) const noexcept = 0;
  virtual bool is_aborted() const noexcept = 0;
  virtual void mark_dead(int rank) = 0;
  virtual void mark_done(int rank) = 0;
  virtual void abort_all() = 0;
  virtual detail::FaultCounters& counters() noexcept = 0;

  virtual void deliver(int self, int dest, detail::Message&& msg,
                       bool sync) = 0;
  virtual Wait recv(int self, int source, std::int64_t tag, bool internal,
                    const std::chrono::steady_clock::time_point* deadline,
                    detail::Message* out) = 0;
  /// User channel only (internal messages are never probed).
  virtual Wait probe(int self, int source, std::int64_t tag,
                     const std::chrono::steady_clock::time_point* deadline,
                     ProbeResult* out) = 0;
  virtual bool iprobe(int self, int source, std::int64_t tag,
                      ProbeResult* out) = 0;
  [[noreturn]] virtual void crash_self(int self, const std::string& why) = 0;
};

}  // namespace pgasm::vmpi
