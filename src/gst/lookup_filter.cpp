#include "gst/lookup_filter.hpp"

#include <algorithm>

#include "util/radix_sort.hpp"

namespace pgasm::gst {

LookupFilter::LookupFilter(const seq::FragmentStore& store,
                           const LookupFilterParams& params)
    : store_(&store), params_(params) {
  const std::uint32_t w = params.w;
  // Collect every unmasked w-mer occurrence with its word value, then sort
  // by word to group the table buckets (equivalent to the classic direct
  // table, without allocating all 4^w heads up front).
  std::vector<std::uint64_t> words;
  for (std::uint32_t s = 0; s < store.size(); ++s) {
    const auto text = store.seq(s);
    if (text.size() < w) continue;
    std::uint64_t word = 0;
    std::uint32_t valid = 0;  // length of the current unmasked run
    const std::uint64_t mask = (w >= 32) ? ~0ull : ((1ull << (2 * w)) - 1);
    for (std::uint32_t p = 0; p < text.size(); ++p) {
      if (!seq::is_base(text[p])) {
        valid = 0;
        continue;
      }
      word = ((word << 2) | text[p]) & mask;
      ++valid;
      if (valid >= w) {
        words.push_back(word);
        occurrences_.push_back(Occurrence{s, p + 1 - w});
      }
    }
  }
  util::radix_sort_u64(words, occurrences_);
  stats_.positions = occurrences_.size();
  stats_.table_entries = 1ull << (2 * w);
  // Classic table cost: one head per slot plus one node per occurrence.
  stats_.table_bytes = stats_.table_entries * 4 + stats_.positions * 8;

  bucket_begin_.push_back(0);
  if (!words.empty()) bucket_word_.push_back(words[0]);
  for (std::size_t k = 1; k < words.size(); ++k) {
    if (words[k] != words[k - 1]) {
      bucket_begin_.push_back(k);
      bucket_word_.push_back(words[k]);
    }
  }
  bucket_begin_.push_back(words.size());
}

bool LookupFilter::done() const noexcept {
  return bucket_ + 1 >= bucket_begin_.size();
}

bool LookupFilter::emit(const Occurrence& a, const Occurrence& b,
                        PromisingPair& out) {
  if (a.seq == b.seq) return false;
  const Occurrence* first = &a;
  const Occurrence* second = &b;
  if (params_.doubled_input) {
    const std::uint32_t ga = a.seq >> 1, gb = b.seq >> 1;
    if (ga == gb) return false;
    if (ga > gb) std::swap(first, second);
    if ((first->seq & 1u) != 0) return false;  // canonical mirror only
  } else {
    if (a.seq > b.seq) std::swap(first, second);
  }
  if (params_.dedup_per_word) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(first->seq) << 32) | second->seq;
    if (!seen_in_bucket_.insert(key).second) return false;
  }
  out.seq_a = first->seq;
  out.pos_a = first->pos;
  out.seq_b = second->seq;
  out.pos_b = second->pos;
  out.match_len = params_.w;
  return true;
}

bool LookupFilter::next(PromisingPair& out) {
  while (bucket_ + 1 < bucket_begin_.size()) {
    const std::size_t begin = bucket_begin_[bucket_];
    const std::size_t end = bucket_begin_[bucket_ + 1];
    if (fresh_bucket_) {
      i_ = begin;
      j_ = begin + 1;
      seen_in_bucket_.clear();
      fresh_bucket_ = false;
    }
    while (i_ + 1 < end) {
      if (j_ < end) {
        const Occurrence a = occurrences_[i_];
        const Occurrence b = occurrences_[j_];
        ++j_;
        if (emit(a, b, out)) {
          ++stats_.pairs_emitted;
          ++pairs_by_word_[bucket_word_[bucket_]];
          return true;
        }
        continue;
      }
      ++i_;
      j_ = i_ + 1;
    }
    ++bucket_;
    fresh_bucket_ = true;
  }
  finalize_stats();
  return false;
}

}  // namespace pgasm::gst
