// Parallel generalized suffix tree construction (paper Section 6).
//
// Algorithm, per rank:
//   1. Own a contiguous slice of the fragments (~N/p characters) and
//      enumerate its suffixes.
//   2. Bucket suffixes by their w-length prefix; allreduce the bucket
//      histogram; deterministically assign buckets to ranks balancing the
//      suffix load (millions of buckets for w=10..12 in the paper; 4^w
//      scaled down here).
//   3. Redistribute suffixes to their bucket owners with the paper's
//      customized staged Alltoallv (bounded buffers, p-1 paired rounds).
//   4. Fetch the fragment text needed to build the local subtrees in
//      batches of Θ(N/p) characters through paired collective rounds:
//      a request Alltoallv (fragment ids) and a service Alltoallv
//      (fragment payloads). Ranks that exhaust their batches keep
//      participating to serve others.
//   5. Build the local bucket subtrees depth-first (SuffixTree).
//
// The result holds a rank-local FragmentStore (fetched copies), the local
// subforest, and the local->global sequence id map used when pairs are
// reported to the clustering master.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gst/suffix_tree.hpp"
#include "seq/fragment_store.hpp"
#include "vmpi/runtime.hpp"

namespace pgasm::gst {

struct ParallelGstParams {
  GstParams gst{.min_match = 20, .prefix_w = 6};
  /// Target characters per fragment-fetch batch; 0 = everything in one
  /// batch. The paper sizes batches at Θ(N/p).
  std::uint64_t fetch_batch_chars = 1u << 20;
  /// When true (and p > 1), rank 0 is assigned no buckets: the clustering
  /// phase uses rank 0 as the master, which generates no pairs (Fig. 6).
  bool exclude_rank0 = false;
  /// Fault-tolerant construction: replace the collective path (which aborts
  /// if any rank dies) with a coordinator-driven point-to-point protocol.
  /// Every message's content is a pure function of (global store, params,
  /// bucket plan), so a receiver that times out on a dead or silent peer
  /// recomputes the missing contribution locally instead of waiting; the
  /// coordinator reassigns the buckets of ranks that never confirm
  /// completion, and all survivors agree on one final owner table.
  bool fault_tolerant = false;
  /// Initial / maximum per-wait receive deadline in the fault-tolerant
  /// path (seconds, doubled per retry up to the cap).
  double ft_timeout = 0.05;
  double ft_timeout_cap = 0.4;
  /// Timeouts tolerated per peer before its contribution is recomputed.
  int ft_max_retries = 3;
  /// Resume from a recorded GST checkpoint: skip every construction phase
  /// and rebuild this rank's portion locally under the given owner table
  /// (no communication). Non-owning; must outlive the call.
  const std::vector<std::int32_t>* resume_bucket_owner = nullptr;
};

struct GstBuildStats {
  std::uint64_t local_suffixes = 0;       ///< after redistribution
  std::uint64_t local_buckets = 0;        ///< non-empty buckets owned
  std::uint64_t fetched_fragments = 0;    ///< fragments copied from peers
  std::uint64_t fetch_rounds = 0;         ///< batched fetch iterations
  double compute_seconds = 0;             ///< thread CPU time in local work
  double comm_seconds = 0;                ///< modeled comm charge (ledger Δ)
  std::uint64_t bytes_sent = 0;           ///< ledger Δ
  std::uint64_t tree_nodes = 0;
  // Fault-tolerant path recovery counters.
  std::uint64_t ranks_recovered = 0;    ///< peers whose input was recomputed
  std::uint64_t buckets_reassigned = 0; ///< buckets moved off dead ranks
  std::uint64_t ft_retries = 0;         ///< receive timeouts retried
  std::uint8_t resumed_from_plan = 0;   ///< built from a recorded owner table
  std::uint8_t portion_rebuilt = 0;     ///< final table differed from plan
};

struct DistributedGst {
  seq::FragmentStore local_store;              ///< fetched fragment copies
  std::vector<std::uint32_t> local_to_global;  ///< local seq id -> global
  std::unique_ptr<SuffixTree> tree;            ///< forest over local ids
  /// bucket id -> owning rank, identical on every rank (deterministic
  /// assignment). Kept so a survivor can rebuild a dead rank's portion.
  std::vector<std::int32_t> bucket_owner;
  GstBuildStats stats;

  // `tree` references `local_store`, so moves must re-seat that reference
  // at the store's new address — the defaults would leave the tree pointing
  // into the moved-from (soon destroyed) object. Bites whenever a factory
  // return value is moved into place, e.g. the generator-takeover path's
  // make_unique<DistributedGst>(rebuild_rank_portion(...)).
  DistributedGst() = default;
  DistributedGst(DistributedGst&& o) noexcept
      : local_store(std::move(o.local_store)),
        local_to_global(std::move(o.local_to_global)),
        tree(std::move(o.tree)),
        bucket_owner(std::move(o.bucket_owner)),
        stats(o.stats) {
    if (tree) tree->rebind_store(local_store);
  }
  DistributedGst& operator=(DistributedGst&& o) noexcept {
    if (this != &o) {
      local_store = std::move(o.local_store);
      local_to_global = std::move(o.local_to_global);
      tree = std::move(o.tree);
      bucket_owner = std::move(o.bucket_owner);
      stats = o.stats;
      if (tree) tree->rebind_store(local_store);
    }
    return *this;
  }
};

/// Contiguous fragment partition: rank r owns sequence ids
/// [slice_begin[r], slice_begin[r+1]). Balanced by total characters.
/// Deterministic; all ranks compute the same result.
std::vector<std::uint32_t> partition_store(const seq::FragmentStore& store,
                                           int num_ranks);

/// Deterministic bucket -> rank assignment balancing suffix counts (greedy
/// longest-processing-time). Exposed for tests.
std::vector<std::int32_t> assign_buckets(
    const std::vector<std::uint64_t>& global_histogram, int num_ranks);

/// SPMD entry point: every rank calls this with the same global store.
/// Ranks read only their own slice of `global`; everything else arrives
/// through messages (and is charged to the cost model).
DistributedGst build_distributed_gst(vmpi::Comm& comm,
                                     const seq::FragmentStore& global,
                                     const ParallelGstParams& params);

/// Serially rebuild the GST portion that `role` owned under the given
/// bucket assignment (no communication; reads the full global store).
/// Produces a tree identical to the one `role` built in
/// build_distributed_gst: the global suffix enumeration order equals the
/// concatenation of the per-rank slice enumerations (slices are contiguous
/// and ascending), filtering preserves relative order, and the grouping and
/// local-id assignment rules are deterministic. A survivor adopting a dead
/// worker's generation role therefore replays exactly the same pair stream
/// and can fast-forward to the dead worker's last reported position.
DistributedGst rebuild_rank_portion(const seq::FragmentStore& global,
                                    const std::vector<std::int32_t>& bucket_owner,
                                    int role, const ParallelGstParams& params);

}  // namespace pgasm::gst
