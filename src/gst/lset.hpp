// lsets (Definition 2 in the paper): per-node partitions of the suffixes in
// a node's subtree, keyed by the character *preceding* each suffix (λ for
// suffixes that start their fragment or follow a masked position).
//
// Representation: one singly-linked arena whose entry ids are suffix indices
// — a suffix lives in exactly one lset at any time, and lists are dissolved
// into their parent by O(1) concatenation, which is what gives the paper its
// O(1)-per-pair generation cost and O(N) space (Lemma 2).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "gst/suffix.hpp"
#include "util/contract.hpp"

namespace pgasm::gst {

inline constexpr std::uint32_t kNilEntry =
    std::numeric_limits<std::uint32_t>::max();

/// One linked list within the arena.
struct Lset {
  std::uint32_t head = kNilEntry;
  std::uint32_t tail = kNilEntry;
  std::uint32_t count = 0;

  bool empty() const noexcept { return head == kNilEntry; }
  void clear() noexcept {
    head = tail = kNilEntry;
    count = 0;
  }
};

/// Arena of `next` links, one slot per suffix index.
class LsetArena {
 public:
  explicit LsetArena(std::size_t capacity) : next_(capacity, kNilEntry) {}

  std::uint32_t next(std::uint32_t e) const noexcept { return next_[e]; }

  /// Append entry e (a suffix index not currently in any list) to l.
  void push_back(Lset& l, std::uint32_t e) noexcept {
    PGASM_DCHECK(e < next_.size(), "lset entry outside arena");
    next_[e] = kNilEntry;
    if (l.empty()) {
      l.head = l.tail = e;
    } else {
      next_[l.tail] = e;
      l.tail = e;
    }
    ++l.count;
  }

  /// Concatenate b onto a in O(1); b becomes empty.
  void concat(Lset& a, Lset& b) noexcept {
    if (b.empty()) return;
    if (a.empty()) {
      a = b;
    } else {
      next_[a.tail] = b.head;
      a.tail = b.tail;
      a.count += b.count;
    }
    b.clear();
  }

  /// Unlink the entry *after* prev (or the head when prev == kNilEntry).
  /// Returns the id of the removed entry.
  std::uint32_t unlink_after(Lset& l, std::uint32_t prev) noexcept {
    PGASM_DCHECK(!l.empty(), "unlink from empty lset");
    std::uint32_t victim;
    if (prev == kNilEntry) {
      victim = l.head;
      l.head = next_[victim];
      if (l.head == kNilEntry) l.tail = kNilEntry;
    } else {
      victim = next_[prev];
      next_[prev] = next_[victim];
      if (l.tail == victim) l.tail = prev;
    }
    --l.count;
    return victim;
  }

  std::uint64_t memory_bytes() const noexcept {
    return next_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> next_;
};

/// The five lsets of one live node.
struct NodeLsets {
  std::array<Lset, kNumClasses> cls{};

  void clear() noexcept {
    for (auto& l : cls) l.clear();
  }
  std::uint32_t total() const noexcept {
    std::uint32_t t = 0;
    for (const auto& l : cls) t += l.count;
    return t;
  }
};

/// Pool of NodeLsets with a free list: only "frontier" nodes (processed but
/// their parent not yet) hold live lsets, so the pool stays small.
class LsetPool {
 public:
  std::uint32_t alloc() {
    if (!free_.empty()) {
      const std::uint32_t r = free_.back();
      free_.pop_back();
      pool_[r].clear();
      return r;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void release(std::uint32_t r) { free_.push_back(r); }

  NodeLsets& operator[](std::uint32_t r) noexcept { return pool_[r]; }
  const NodeLsets& operator[](std::uint32_t r) const noexcept {
    return pool_[r];
  }

  std::size_t live() const noexcept { return pool_.size() - free_.size(); }
  std::uint64_t memory_bytes() const noexcept {
    return pool_.size() * sizeof(NodeLsets) +
           free_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<NodeLsets> pool_;
  std::vector<std::uint32_t> free_;
};

}  // namespace pgasm::gst
