// On-demand promising-pair generation (paper Section 5).
//
// A *promising pair* is a pair of sequences sharing a maximal match of
// length >= ψ. Pairs are generated at GST nodes processed in decreasing
// string-depth order — so pairs stream out in non-increasing maximal-match
// length order without ever being stored (O(N) space), and each pair costs
// O(1): cross-products of lsets across different children (conditions
// C1..C4 of Lemma 1), lists dissolved upward by O(1) concatenation.
//
// Two generation modes:
//   * suffix-level  (dup_elim = false): emits every maximal match once,
//     identified by (seq, pos) of both occurrences. Used when alignments
//     are anchored to each maximal match, and by the property tests.
//   * fragment-level (dup_elim = true): the paper's duplicate-elimination
//     scheme — before generating at an internal node, all but one
//     occurrence of each fragment is removed from the children's lsets
//     (boolean array of size |sequences|, reset after use), so a pair is
//     emitted at most once per node and at least once overall.
//
// When the input store is the doubled (forward + reverse complement)
// collection, set doubled_input: pairs within the same underlying fragment
// are suppressed and exactly one of the two strand-mirror images of each
// pair is emitted (the one whose lower-numbered fragment appears forward).
#pragma once

#include <cstdint>
#include <vector>

#include "gst/lset.hpp"
#include "gst/suffix_tree.hpp"

namespace pgasm::gst {

struct PromisingPair {
  std::uint32_t seq_a = 0;  ///< sequence id (doubled id when doubled input)
  std::uint32_t pos_a = 0;  ///< maximal-match start within seq_a
  std::uint32_t seq_b = 0;
  std::uint32_t pos_b = 0;
  std::uint32_t match_len = 0;

  /// Band center for an anchored overlap alignment of (seq_a, seq_b).
  std::int32_t shift() const noexcept {
    return static_cast<std::int32_t>(pos_b) - static_cast<std::int32_t>(pos_a);
  }

  friend bool operator==(const PromisingPair&, const PromisingPair&) = default;
};

struct PairGenParams {
  bool dup_elim = true;
  bool doubled_input = false;
  /// Optional id translation applied before emission (and before the
  /// doubled-input filters): maps the tree's sequence ids to ids in an
  /// enclosing store. Used by the parallel path, where a rank's tree is
  /// built over local fragment copies whose ids do not preserve the
  /// forward/reverse-complement pairing of the global doubled store.
  /// When set, emitted pairs carry the translated ids.
  const std::vector<std::uint32_t>* global_ids = nullptr;
};

class PairGenerator {
 public:
  PairGenerator(const SuffixTree& tree, PairGenParams params = {});

  /// Produce the next pair. Returns false when exhausted.
  bool next(PromisingPair& out);

  /// Fill up to `max` pairs into out (appended); returns how many.
  std::size_t fill(std::vector<PromisingPair>& out, std::size_t max);

  bool done() const noexcept { return done_; }

  std::uint64_t pairs_emitted() const noexcept { return emitted_; }
  std::uint64_t pairs_filtered_self() const noexcept { return filtered_self_; }
  std::uint64_t pairs_filtered_mirror() const noexcept {
    return filtered_mirror_;
  }

  /// Bytes held by generator state (arena + pool + node order).
  std::uint64_t memory_bytes() const noexcept;

  /// Convenience: run a fresh generator to exhaustion.
  static std::vector<PromisingPair> generate_all(const SuffixTree& tree,
                                                 PairGenParams params = {});

 private:
  void enter_node(std::uint32_t u);
  void finish_node(std::uint32_t u);
  void dedup_children();
  bool produce(PromisingPair& out);  // next raw pair at current node
  bool emit(std::uint32_t sfx_a, std::uint32_t sfx_b, std::uint32_t len,
            PromisingPair& out);

  const SuffixTree* tree_;
  PairGenParams params_;

  std::vector<std::uint32_t> order_;   // nodes, deepest first
  std::size_t oi_ = 0;                 // next node to enter
  bool in_node_ = false;
  bool done_ = false;

  LsetArena arena_;
  LsetPool pool_;
  std::vector<std::uint32_t> lset_ref_;  // node id -> pool ref (kNilNode = none)

  // Current-node iteration state.
  std::uint32_t u_ = kNilNode;
  bool leaf_ = false;
  std::uint32_t leaf_ref_ = kNilNode;       // pool ref holding leaf lsets
  std::vector<std::uint32_t> children_;     // child node ids (internal nodes)
  std::size_t ci_ = 0, cj_ = 0;             // child-pair cursor
  std::size_t combo_ = 0;                   // class-combo cursor
  std::uint32_t p_ = kNilEntry, q_ = kNilEntry;  // element cursors
  bool cursors_fresh_ = false;

  std::vector<std::uint8_t> seen_;  // dedup bitmap over sequence ids

  std::uint64_t emitted_ = 0;
  std::uint64_t filtered_self_ = 0;
  std::uint64_t filtered_mirror_ = 0;
};

}  // namespace pgasm::gst
