// Generalized suffix tree (GST), built as a forest of bucket subtrees.
//
// Construction follows the paper (Section 6): suffixes are grouped into
// buckets by their w-length prefix, and each bucket's compacted trie is
// built depth-first by recursively partitioning suffixes on the character
// at the current depth. Since the minimum maximal-match length ψ is >= w,
// the top of the GST (depth < w) is never materialized. The same code path
// serves the serial build (one implicit bucket at depth 0) and the parallel
// build (each rank constructs the subtrees of its assigned buckets).
//
// Worst case build time is O(S · l) character probes for S suffixes of
// average effective length l, matching the paper's stated bound; space is
// O(S) nodes (leaves merge identical suffixes).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "gst/suffix.hpp"
#include "seq/fragment_store.hpp"

namespace pgasm::gst {

inline constexpr std::uint32_t kNilNode =
    std::numeric_limits<std::uint32_t>::max();

struct Node {
  std::uint32_t parent = kNilNode;
  std::uint32_t depth = 0;          ///< string-depth (path-label length)
  std::uint32_t first_child = kNilNode;
  std::uint32_t next_sibling = kNilNode;
  /// Leaves: the (reordered) suffix range they own. Internal nodes: empty.
  std::uint32_t suffix_begin = 0;
  std::uint32_t suffix_end = 0;

  bool is_leaf() const noexcept { return first_child == kNilNode; }
  std::uint32_t num_suffixes() const noexcept {
    return suffix_end - suffix_begin;
  }
};

struct GstParams {
  std::uint32_t min_match = 20;  ///< ψ: minimum maximal-match length
  /// w: bucket prefix length, 0 < w <= min_match. Serial builds may pass 0
  /// to mean "one bucket at depth 0".
  std::uint32_t prefix_w = 0;
};

class SuffixTree {
 public:
  /// Serial build over all suffixes of `store` (forward sequences only; the
  /// caller passes a doubled store to include reverse complements).
  SuffixTree(const seq::FragmentStore& store, const GstParams& params);

  /// Build over an explicit suffix set (the parallel path: a rank's bucket
  /// contents). `start_depth` is the guaranteed common-prefix length within
  /// each bucket; `bucket_begin` delimits buckets in `suffixes` (terminated
  /// by suffixes.size()). Pass a single bucket [0, size) for no grouping.
  SuffixTree(const seq::FragmentStore& store, std::vector<Suffix> suffixes,
             std::span<const std::uint32_t> bucket_begin,
             std::uint32_t start_depth, const GstParams& params);

  const seq::FragmentStore& store() const noexcept { return *store_; }
  const GstParams& params() const noexcept { return params_; }

  /// Re-point the tree at a store that moved. The tree stores local suffix
  /// ids, not addresses, so any store with identical content is valid; an
  /// owner that holds the store and the tree side by side (DistributedGst)
  /// must call this after moving both, or the tree would keep referencing
  /// the moved-from store object.
  void rebind_store(const seq::FragmentStore& store) noexcept {
    store_ = &store;
  }

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_suffixes() const noexcept { return suffixes_.size(); }
  std::size_t num_leaves() const noexcept { return num_leaves_; }
  const Node& node(std::uint32_t id) const noexcept { return nodes_[id]; }
  const Suffix& suffix(std::uint32_t idx) const noexcept {
    return suffixes_[idx];
  }

  /// Node ids in decreasing string-depth order, children before parents
  /// (depth ties broken by descending id; children always have larger ids).
  /// Only nodes with depth >= min_depth are included.
  std::vector<std::uint32_t> nodes_by_depth_desc(std::uint32_t min_depth) const;

  /// Total memory footprint of the structure, in bytes (paper §7.1 reports
  /// bytes per input character; bench/space_accounting reproduces that).
  std::uint64_t memory_bytes() const noexcept;

  /// Structural invariant check used by the tests. Returns an empty string
  /// if all invariants hold, else a description of the first violation.
  /// Verifies: suffix partition across leaves, path-label prefix property,
  /// sibling first-character distinctness, parent/child depth ordering,
  /// and right-maximality of branching.
  std::string check_invariants() const;

 private:
  void build_range(std::uint32_t begin, std::uint32_t end, std::uint32_t depth,
                   std::uint32_t parent);

  const seq::FragmentStore* store_;
  GstParams params_;
  std::vector<Suffix> suffixes_;
  std::vector<Node> nodes_;
  std::size_t num_leaves_ = 0;
  std::vector<Suffix> scratch_;  // partition buffer, build time only
};

}  // namespace pgasm::gst
