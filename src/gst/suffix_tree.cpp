#include "gst/suffix_tree.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <sstream>

namespace pgasm::gst {

SuffixTree::SuffixTree(const seq::FragmentStore& store, const GstParams& params)
    : SuffixTree(store, enumerate_suffixes(store, std::max(params.min_match,
                                                           std::uint32_t{1})),
                 std::span<const std::uint32_t>{}, 0, params) {}

SuffixTree::SuffixTree(const seq::FragmentStore& store,
                       std::vector<Suffix> suffixes,
                       std::span<const std::uint32_t> bucket_begin,
                       std::uint32_t start_depth, const GstParams& params)
    : store_(&store), params_(params), suffixes_(std::move(suffixes)) {
  nodes_.reserve(suffixes_.size() / 2 + 16);
  scratch_.resize(suffixes_.size());
  if (bucket_begin.empty()) {
    if (!suffixes_.empty())
      build_range(0, static_cast<std::uint32_t>(suffixes_.size()), start_depth,
                  kNilNode);
  } else {
    for (std::size_t b = 0; b < bucket_begin.size(); ++b) {
      const std::uint32_t begin = bucket_begin[b];
      const std::uint32_t end =
          b + 1 < bucket_begin.size()
              ? bucket_begin[b + 1]
              : static_cast<std::uint32_t>(suffixes_.size());
      if (begin < end) build_range(begin, end, start_depth, kNilNode);
    }
  }
  scratch_.clear();
  scratch_.shrink_to_fit();
}

void SuffixTree::build_range(std::uint32_t begin, std::uint32_t end,
                             std::uint32_t depth, std::uint32_t parent) {
  const auto& store = *store_;

  // Extend depth while the range does not branch (path compression).
  std::array<std::uint32_t, seq::kSigma> base_count{};
  std::uint32_t ended = 0;
  for (;;) {
    if (end - begin == 1) {
      // Single suffix: leaf spanning its full effective length.
      const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
      Node leaf;
      leaf.parent = parent;
      leaf.depth = suffixes_[begin].len;
      leaf.suffix_begin = begin;
      leaf.suffix_end = end;
      if (parent != kNilNode) {
        leaf.next_sibling = nodes_[parent].first_child;
        nodes_[parent].first_child = id;
      }
      nodes_.push_back(leaf);
      ++num_leaves_;
      return;
    }

    base_count.fill(0);
    ended = 0;
    for (std::uint32_t i = begin; i < end; ++i) {
      const Suffix& s = suffixes_[i];
      if (s.len == depth) {
        ++ended;
      } else {
        ++base_count[store.seq(s.seq)[s.pos + depth]];
      }
    }
    if (ended == end - begin) {
      // All suffixes are identical strings of length `depth`: one leaf.
      const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
      Node leaf;
      leaf.parent = parent;
      leaf.depth = depth;
      leaf.suffix_begin = begin;
      leaf.suffix_end = end;
      if (parent != kNilNode) {
        leaf.next_sibling = nodes_[parent].first_child;
        nodes_[parent].first_child = id;
      }
      nodes_.push_back(leaf);
      ++num_leaves_;
      return;
    }
    if (ended == 0) {
      int nonempty = 0, which = -1;
      for (int c = 0; c < seq::kSigma; ++c) {
        if (base_count[c] > 0) {
          ++nonempty;
          which = c;
        }
      }
      if (nonempty == 1) {
        (void)which;
        ++depth;  // no branching here; extend the implicit edge
        continue;
      }
    }
    break;  // branching point at `depth`
  }

  // Create the internal node for the branching point.
  const std::uint32_t u = static_cast<std::uint32_t>(nodes_.size());
  {
    Node inner;
    inner.parent = parent;
    inner.depth = depth;
    if (parent != kNilNode) {
      inner.next_sibling = nodes_[parent].first_child;
      nodes_[parent].first_child = u;
    }
    nodes_.push_back(inner);
  }

  // Stable partition of [begin, end): ended first, then A, C, G, T.
  std::array<std::uint32_t, seq::kSigma + 1> group_begin{};
  group_begin[0] = begin;
  group_begin[1] = begin + ended;
  for (int c = 1; c < seq::kSigma; ++c)
    group_begin[c + 1] = group_begin[c] + base_count[c - 1];
  std::array<std::uint32_t, seq::kSigma + 1> cursor = group_begin;
  std::copy(suffixes_.begin() + begin, suffixes_.begin() + end,
            scratch_.begin() + begin);
  for (std::uint32_t i = begin; i < end; ++i) {
    const Suffix& s = scratch_[i];
    const int g =
        s.len == depth ? 0 : 1 + store.seq(s.seq)[s.pos + depth];
    suffixes_[cursor[g]++] = s;
  }

  // Ended group -> one leaf child at the same string-depth ("$" edge).
  if (ended > 0) {
    const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
    Node leaf;
    leaf.parent = u;
    leaf.depth = depth;
    leaf.suffix_begin = begin;
    leaf.suffix_end = begin + ended;
    leaf.next_sibling = nodes_[u].first_child;
    nodes_[u].first_child = id;
    nodes_.push_back(leaf);
    ++num_leaves_;
  }
  // Base-character groups -> recurse (they share depth+1 characters).
  for (int c = 0; c < seq::kSigma; ++c) {
    const std::uint32_t gb = group_begin[c + 1];
    const std::uint32_t ge = gb + base_count[c];
    if (gb < ge) build_range(gb, ge, depth + 1, u);
  }
}

std::vector<std::uint32_t> SuffixTree::nodes_by_depth_desc(
    std::uint32_t min_depth) const {
  // Counting sort by depth ascending (stable in id), then reverse: yields
  // depth descending with id descending inside equal depths, which puts
  // children (always created after, so larger id) before their parents.
  std::uint32_t max_depth = 0;
  for (const Node& nd : nodes_) max_depth = std::max(max_depth, nd.depth);
  std::vector<std::uint32_t> count(max_depth + 2, 0);
  std::uint32_t kept = 0;
  for (const Node& nd : nodes_) {
    if (nd.depth >= min_depth) {
      ++count[nd.depth + 1];
      ++kept;
    }
  }
  for (std::size_t d = 1; d < count.size(); ++d) count[d] += count[d - 1];
  std::vector<std::uint32_t> out(kept);
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].depth >= min_depth) out[count[nodes_[id].depth]++] = id;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t SuffixTree::memory_bytes() const noexcept {
  return suffixes_.size() * sizeof(Suffix) + nodes_.size() * sizeof(Node);
}

std::string SuffixTree::check_invariants() const {
  std::ostringstream err;
  const auto& store = *store_;
  const std::size_t nsuf = suffixes_.size();

  // 1. Leaves partition the suffix array.
  std::vector<std::uint8_t> covered(nsuf, 0);
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (!nd.is_leaf()) continue;
    if (nd.suffix_begin >= nd.suffix_end) {
      err << "leaf " << id << " has empty suffix range";
      return err.str();
    }
    for (std::uint32_t i = nd.suffix_begin; i < nd.suffix_end; ++i) {
      if (covered[i]) {
        err << "suffix index " << i << " covered by two leaves";
        return err.str();
      }
      covered[i] = 1;
    }
    // All suffixes of a leaf are identical strings of length == depth.
    const Suffix& first = suffixes_[nd.suffix_begin];
    for (std::uint32_t i = nd.suffix_begin; i < nd.suffix_end; ++i) {
      const Suffix& s = suffixes_[i];
      if (s.len != nd.depth) {
        err << "leaf " << id << ": suffix len " << s.len << " != depth "
            << nd.depth;
        return err.str();
      }
      const auto ta = store.seq(first.seq);
      const auto tb = store.seq(s.seq);
      for (std::uint32_t k = 0; k < nd.depth; ++k) {
        if (ta[first.pos + k] != tb[s.pos + k]) {
          err << "leaf " << id << ": non-identical suffixes";
          return err.str();
        }
      }
    }
  }
  for (std::size_t i = 0; i < nsuf; ++i) {
    if (!covered[i]) {
      err << "suffix index " << i << " not covered by any leaf";
      return err.str();
    }
  }

  // 2. Parent/child structure and depths; branch character distinctness.
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (nd.is_leaf()) continue;
    // Representative suffix of a subtree: first leaf found by descent.
    auto representative = [&](std::uint32_t v) {
      while (!nodes_[v].is_leaf()) v = nodes_[v].first_child;
      return suffixes_[nodes_[v].suffix_begin];
    };
    std::array<bool, seq::kSigma> seen{};
    bool seen_end = false;
    int nchildren = 0;
    for (std::uint32_t c = nd.first_child; c != kNilNode;
         c = nodes_[c].next_sibling) {
      ++nchildren;
      if (nodes_[c].parent != id) {
        err << "child " << c << " parent link broken";
        return err.str();
      }
      if (nodes_[c].depth < nd.depth) {
        err << "child " << c << " shallower than parent " << id;
        return err.str();
      }
      const Suffix rep = representative(c);
      // Representative must carry the node's path label as a prefix; its
      // character at nd.depth is the branch character (or it ends here).
      if (rep.len < nd.depth) {
        err << "subtree suffix shorter than node depth at node " << id;
        return err.str();
      }
      if (rep.len == nd.depth) {
        if (seen_end) {
          err << "node " << id << " has two end-leaf children";
          return err.str();
        }
        seen_end = true;
        if (nodes_[c].depth != nd.depth || !nodes_[c].is_leaf()) {
          err << "end child of node " << id << " malformed";
          return err.str();
        }
      } else {
        const seq::Code ch = store.seq(rep.seq)[rep.pos + nd.depth];
        if (seen[ch]) {
          err << "node " << id << " has two children branching on char "
              << int(ch);
          return err.str();
        }
        seen[ch] = true;
        if (nodes_[c].depth <= nd.depth) {
          err << "base child of node " << id << " not deeper";
          return err.str();
        }
      }
    }
    if (nchildren < 2) {
      err << "internal node " << id << " has " << nchildren
          << " children (no path compression?)";
      return err.str();
    }
  }

  // 3. Prefix property: every suffix under a node shares its path label.
  // Verified transitively: each leaf's suffixes are identical (checked
  // above) and each child-representative agrees with the parent's label up
  // to parent depth by construction of branching; do a direct spot check
  // for each internal node against its first child's representative chain.
  for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (nd.is_leaf() || nd.parent == kNilNode) continue;
    const Node& par = nodes_[nd.parent];
    // Compare representatives of nd and its parent on [0, par.depth).
    auto rep_of = [&](std::uint32_t v) {
      while (!nodes_[v].is_leaf()) v = nodes_[v].first_child;
      return suffixes_[nodes_[v].suffix_begin];
    };
    const Suffix a = rep_of(id);
    const Suffix b = rep_of(nd.parent);
    const auto ta = store.seq(a.seq);
    const auto tb = store.seq(b.seq);
    for (std::uint32_t k = 0; k < par.depth; ++k) {
      if (ta[a.pos + k] != tb[b.pos + k]) {
        err << "prefix property violated between node " << id
            << " and parent";
        return err.str();
      }
    }
  }

  return {};
}

}  // namespace pgasm::gst
