#include "gst/pair_generator.hpp"

#include <cassert>
#include <utility>

namespace pgasm::gst {

namespace {

struct Combo {
  std::uint8_t x, y;
};

// Leaf combos: classes within one node's own lists. Right-maximality is
// automatic (all suffixes end at the leaf); left-maximality needs different
// preceding characters, or both λ (condition C4).
constexpr Combo kLeafCombos[] = {
    {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2},
    {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
};
constexpr std::size_t kNumLeafCombos = std::size(kLeafCombos);

// Internal combos: classes across two *different* children (condition C3
// gives right-maximality). All ordered (x, y) except same-base (x==y>0):
// the two elements come from distinct child slots, so both orders are
// distinct cross-products and none is generated twice.
constexpr Combo kInternalCombos[] = {
    {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {1, 2},
    {1, 3}, {1, 4}, {2, 0}, {2, 1}, {2, 3}, {2, 4}, {3, 0},
    {3, 1}, {3, 2}, {3, 4}, {4, 0}, {4, 1}, {4, 2}, {4, 3},
};
constexpr std::size_t kNumInternalCombos = std::size(kInternalCombos);

}  // namespace

PairGenerator::PairGenerator(const SuffixTree& tree, PairGenParams params)
    : tree_(&tree),
      params_(params),
      order_(tree.nodes_by_depth_desc(tree.params().min_match)),
      arena_(tree.num_suffixes()),
      lset_ref_(tree.num_nodes(), kNilNode),
      seen_(tree.store().size(), 0) {}

void PairGenerator::enter_node(std::uint32_t u) {
  u_ = u;
  const Node& nd = tree_->node(u);
  leaf_ = nd.is_leaf();
  combo_ = 0;
  cursors_fresh_ = true;
  if (leaf_) {
    leaf_ref_ = pool_.alloc();
    for (std::uint32_t i = nd.suffix_begin; i < nd.suffix_end; ++i) {
      arena_.push_back(pool_[leaf_ref_].cls[tree_->suffix(i).cls], i);
    }
  } else {
    children_.clear();
    for (std::uint32_t c = nd.first_child; c != kNilNode;
         c = tree_->node(c).next_sibling) {
      assert(lset_ref_[c] != kNilNode && "child lsets must be ready");
      children_.push_back(c);
    }
    if (params_.dup_elim) dedup_children();
    ci_ = 0;
    cj_ = 1;
  }
}

void PairGenerator::dedup_children() {
  // Keep one arbitrary occurrence of each sequence across all (child,
  // class) slots under the current node; remove the rest (paper Section 5,
  // duplicate elimination). The boolean array is reset afterwards by
  // re-walking the retained entries, keeping the cost proportional to the
  // lset sizes, not to |sequences|.
  for (std::uint32_t child : children_) {
    NodeLsets& L = pool_[lset_ref_[child]];
    for (auto& lset : L.cls) {
      std::uint32_t prev = kNilEntry;
      std::uint32_t e = lset.head;
      while (e != kNilEntry) {
        const std::uint32_t s = tree_->suffix(e).seq;
        if (seen_[s]) {
          arena_.unlink_after(lset, prev);
          e = prev == kNilEntry ? lset.head : arena_.next(prev);
        } else {
          seen_[s] = 1;
          prev = e;
          e = arena_.next(e);
        }
      }
    }
  }
  for (std::uint32_t child : children_) {
    NodeLsets& L = pool_[lset_ref_[child]];
    for (auto& lset : L.cls) {
      for (std::uint32_t e = lset.head; e != kNilEntry; e = arena_.next(e)) {
        seen_[tree_->suffix(e).seq] = 0;
      }
    }
  }
}

void PairGenerator::finish_node(std::uint32_t u) {
  const Node& nd = tree_->node(u);
  const bool parent_needs =
      nd.parent != kNilNode &&
      tree_->node(nd.parent).depth >= tree_->params().min_match;
  if (leaf_) {
    if (parent_needs) {
      lset_ref_[u] = leaf_ref_;
    } else {
      pool_.release(leaf_ref_);
    }
    leaf_ref_ = kNilNode;
    return;
  }
  if (parent_needs) {
    const std::uint32_t ref = pool_.alloc();
    for (std::uint32_t child : children_) {
      for (int x = 0; x < kNumClasses; ++x) {
        arena_.concat(pool_[ref].cls[x], pool_[lset_ref_[child]].cls[x]);
      }
    }
    lset_ref_[u] = ref;
  }
  for (std::uint32_t child : children_) {
    pool_.release(lset_ref_[child]);
    lset_ref_[child] = kNilNode;
  }
}

bool PairGenerator::produce(PromisingPair& out) {
  const std::uint32_t depth = tree_->node(u_).depth;
  if (leaf_) {
    while (combo_ < kNumLeafCombos) {
      const Combo cb = kLeafCombos[combo_];
      const Lset& lx = pool_[leaf_ref_].cls[cb.x];
      const Lset& ly = pool_[leaf_ref_].cls[cb.y];
      if (cursors_fresh_) {
        p_ = lx.head;
        q_ = (cb.x == cb.y)
                 ? (p_ == kNilEntry ? kNilEntry : arena_.next(p_))
                 : ly.head;
        cursors_fresh_ = false;
      }
      while (p_ != kNilEntry) {
        if (q_ != kNilEntry) {
          const std::uint32_t a = p_, b = q_;
          q_ = arena_.next(q_);
          if (emit(a, b, depth, out)) return true;
          continue;
        }
        p_ = arena_.next(p_);
        q_ = (cb.x == cb.y)
                 ? (p_ == kNilEntry ? kNilEntry : arena_.next(p_))
                 : ly.head;
      }
      ++combo_;
      cursors_fresh_ = true;
    }
    return false;
  }

  const std::size_t m = children_.size();
  while (ci_ + 1 < m) {
    while (cj_ < m) {
      while (combo_ < kNumInternalCombos) {
        const Combo cb = kInternalCombos[combo_];
        const Lset& lx = pool_[lset_ref_[children_[ci_]]].cls[cb.x];
        const Lset& ly = pool_[lset_ref_[children_[cj_]]].cls[cb.y];
        if (lx.empty() || ly.empty()) {
          ++combo_;
          cursors_fresh_ = true;
          continue;
        }
        if (cursors_fresh_) {
          p_ = lx.head;
          q_ = ly.head;
          cursors_fresh_ = false;
        }
        while (p_ != kNilEntry) {
          if (q_ != kNilEntry) {
            const std::uint32_t a = p_, b = q_;
            q_ = arena_.next(q_);
            if (emit(a, b, depth, out)) return true;
            continue;
          }
          p_ = arena_.next(p_);
          q_ = ly.head;
        }
        ++combo_;
        cursors_fresh_ = true;
      }
      ++cj_;
      combo_ = 0;
    }
    ++ci_;
    cj_ = ci_ + 1;
  }
  return false;
}

bool PairGenerator::emit(std::uint32_t sfx_a, std::uint32_t sfx_b,
                         std::uint32_t len, PromisingPair& out) {
  const Suffix& sa = tree_->suffix(sfx_a);
  const Suffix& sb = tree_->suffix(sfx_b);
  if (sa.seq == sb.seq) {
    ++filtered_self_;
    return false;
  }
  // Translate to the enclosing store's ids before any strand logic: local
  // ids on a rank's tree do not preserve forward/RC adjacency.
  const std::uint32_t ida =
      params_.global_ids ? (*params_.global_ids)[sa.seq] : sa.seq;
  const std::uint32_t idb =
      params_.global_ids ? (*params_.global_ids)[sb.seq] : sb.seq;
  std::uint32_t first_id = ida, second_id = idb;
  std::uint32_t first_pos = sa.pos, second_pos = sb.pos;
  if (params_.doubled_input) {
    const std::uint32_t ga = ida >> 1, gb = idb >> 1;
    if (ga == gb) {
      ++filtered_self_;  // fragment paired with its own reverse complement
      return false;
    }
    if (ga > gb) {
      std::swap(first_id, second_id);
      std::swap(first_pos, second_pos);
    }
    if ((first_id & 1u) != 0) {
      ++filtered_mirror_;  // the strand-mirror image; its twin is emitted
      return false;
    }
  } else {
    if (ida > idb) {
      std::swap(first_id, second_id);
      std::swap(first_pos, second_pos);
    }
  }
  out.seq_a = first_id;
  out.pos_a = first_pos;
  out.seq_b = second_id;
  out.pos_b = second_pos;
  out.match_len = len;
  return true;
}

bool PairGenerator::next(PromisingPair& out) {
  while (!done_) {
    if (!in_node_) {
      if (oi_ >= order_.size()) {
        done_ = true;
        return false;
      }
      enter_node(order_[oi_++]);
      in_node_ = true;
    }
    if (produce(out)) {
      ++emitted_;
      return true;
    }
    finish_node(u_);
    in_node_ = false;
  }
  return false;
}

std::size_t PairGenerator::fill(std::vector<PromisingPair>& out,
                                std::size_t max) {
  std::size_t got = 0;
  PromisingPair p;
  while (got < max && next(p)) {
    out.push_back(p);
    ++got;
  }
  return got;
}

std::uint64_t PairGenerator::memory_bytes() const noexcept {
  return arena_.memory_bytes() + pool_.memory_bytes() +
         order_.size() * sizeof(std::uint32_t) +
         lset_ref_.size() * sizeof(std::uint32_t) + seen_.size();
}

std::vector<PromisingPair> PairGenerator::generate_all(const SuffixTree& tree,
                                                       PairGenParams params) {
  PairGenerator gen(tree, params);
  std::vector<PromisingPair> out;
  PromisingPair p;
  while (gen.next(p)) out.push_back(p);
  return out;
}

}  // namespace pgasm::gst
