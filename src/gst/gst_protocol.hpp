// Message-level protocol for fault-tolerant distributed GST construction
// (build_distributed_gst_ft in parallel_build.cpp): the coordinator
// (rank 0) collects bucket histograms, plans bucket ownership, referees the
// suffix redistribution, and confirms completion with a Done/Final/FinalAck
// handshake. Declared as data, mirroring core/cluster_protocol.hpp, so
// tools/protocol_check can cross-check the table against the
// implementation and pgasm-lint W015 can demand that every wire tag appear
// in exactly one declarative table.
//
// Recovery philosophy (differs from the clustering protocol): every
// message's content is a pure function of (global store, params, owner
// table), so a receiver that gives up waiting RECOMPUTES the missing
// contribution locally instead of demanding a retransmit. The only
// re-request in the protocol is the plan (kFtPlanReq), because the plan
// depends on coordinator-private liveness decisions and cannot be
// recomputed by a worker.
#pragma once

#include <cstdint>
#include <optional>

namespace pgasm::gst {

/// Protocol message kinds for the FT construction path. The enumerator
/// values ARE the vmpi tags on the wire; range 210+ keeps clear of the
/// clustering protocol's tag space (101-104). to_tag() converts at the
/// comm boundary. -Werror=switch plus pgasm-lint W009 keep every dispatch
/// over this enum exhaustive and default-free.
enum class GstMsgKind : std::uint8_t {
  kFtHist = 210,      ///< worker -> 0: local bucket histogram
  kFtPlan = 211,      ///< 0 -> worker: initial owner table
  kFtSuffix = 212,    ///< rank -> rank: bucket contributions
  kFtDone = 213,      ///< worker -> 0: portion built
  kFtFinal = 214,     ///< 0 -> worker: final owner table
  kFtPlanReq = 215,   ///< worker -> 0: re-send the plan
  kFtFinalAck = 216,  ///< worker -> 0: final table received
};

/// Every protocol kind, for table-driven iteration (protocol_check, tests).
inline constexpr GstMsgKind kAllGstMsgKinds[] = {
    GstMsgKind::kFtHist,  GstMsgKind::kFtPlan,    GstMsgKind::kFtSuffix,
    GstMsgKind::kFtDone,  GstMsgKind::kFtFinal,   GstMsgKind::kFtPlanReq,
    GstMsgKind::kFtFinalAck,
};

/// vmpi tag for a message kind (the enumerator value, by construction).
constexpr int to_tag(GstMsgKind kind) noexcept {
  return static_cast<int>(kind);
}

/// Classify a vmpi tag probed off the wire; nullopt for tags outside the
/// protocol. Exhaustive over GstMsgKind (enforced by -Werror=switch + W009).
constexpr std::optional<GstMsgKind> gst_msg_kind_of(int tag) noexcept {
  const auto kind = static_cast<GstMsgKind>(tag);
  switch (kind) {
    case GstMsgKind::kFtHist:
    case GstMsgKind::kFtPlan:
    case GstMsgKind::kFtSuffix:
    case GstMsgKind::kFtDone:
    case GstMsgKind::kFtFinal:
    case GstMsgKind::kFtPlanReq:
    case GstMsgKind::kFtFinalAck:
      return kind;
  }
  return std::nullopt;
}

/// Stable lowercase name for logs and trace args. Exhaustive switch: adding
/// a GstMsgKind without naming it here is a compile error.
constexpr const char* gst_msg_kind_name(GstMsgKind kind) noexcept {
  switch (kind) {
    case GstMsgKind::kFtHist:
      return "ft_hist";
    case GstMsgKind::kFtPlan:
      return "ft_plan";
    case GstMsgKind::kFtSuffix:
      return "ft_suffix";
    case GstMsgKind::kFtDone:
      return "ft_done";
    case GstMsgKind::kFtFinal:
      return "ft_final";
    case GstMsgKind::kFtPlanReq:
      return "ft_plan_req";
    case GstMsgKind::kFtFinalAck:
      return "ft_final_ack";
  }
  return "?";  // unreachable for valid kinds; keeps the function total
}

// --- Declarative protocol table --------------------------------------------
//
// One row per message kind: direction, send/recv forms, the consuming
// handler, and the recovery/defence story (the FT path's correctness
// argument). tools/protocol_check parses this table and cross-checks the
// identifiers against parallel_build.cpp; an empty cell is a check failure,
// not a shrug.

struct GstMsgSpec {
  GstMsgKind kind;
  const char* name;          ///< must equal gst_msg_kind_name(kind)
  const char* direction;     ///< who sends to whom
  const char* encoder;       ///< producing send form
  const char* decoder;       ///< consuming recv form
  const char* handler;       ///< code that consumes the message
  const char* on_drop;       ///< how a lost instance is recovered
  const char* on_duplicate;  ///< how a re-delivered instance is defused
};

inline constexpr GstMsgSpec kGstProtocol[] = {
    {GstMsgKind::kFtHist, "ft_hist", "worker->coordinator", "send_vector",
     "recv_vector_timeout", "build_distributed_gst_ft",
     "coordinator recomputes the silent rank's histogram locally via "
     "enumerate_suffixes_range and plans without it",
     "each worker sends exactly one histogram; a rank recovered locally and "
     "then heard from is already planned around"},
    {GstMsgKind::kFtPlan, "ft_plan", "coordinator->worker", "send_vector",
     "recv_vector_timeout", "build_distributed_gst_ft",
     "worker re-requests via kFtPlanReq until kCoordinatorWaitTries is "
     "exhausted; a dead coordinator is fatal (TimeoutError)",
     "idempotent: the plan is identical on every re-send"},
    {GstMsgKind::kFtSuffix, "ft_suffix", "rank->rank", "send_vector",
     "recv_vector_timeout", "build_distributed_gst_ft",
     "receiver recomputes the sender's contribution locally via "
     "slice_contribution (content is a pure function of the global store)",
     "one message per (sender, receiver) pair; a locally recovered "
     "contribution supersedes any late arrival, which is never received"},
    {GstMsgKind::kFtDone, "ft_done", "worker->coordinator", "send_value",
     "recv_value", "build_distributed_gst_ft",
     "coordinator times out, treats the silent rank as lost, and reassigns "
     "its buckets to confirmed survivors (LPT over current loads)",
     "duplicate Done doubles as a Final re-request: the coordinator answers "
     "it by re-sending kFtFinal"},
    {GstMsgKind::kFtFinal, "ft_final", "coordinator->worker", "send_vector",
     "recv_vector_timeout", "build_distributed_gst_ft",
     "worker re-sends kFtDone until the Final arrives; a survivor that "
     "never learns the final table aborts (one-table invariant)",
     "idempotent: the final table is identical on every re-send"},
    {GstMsgKind::kFtPlanReq, "ft_plan_req", "worker->coordinator",
     "send_value", "recv_value", "service_plan_reqs",
     "worker re-sends the request on every plan-recv timeout",
     "idempotent: every request is answered with the same plan"},
    {GstMsgKind::kFtFinalAck, "ft_final_ack", "worker->coordinator",
     "send_value", "recv_value", "build_distributed_gst_ft",
     "coordinator re-sends kFtFinal to unacked survivors on every ack "
     "timeout until ft_max_retries idle rounds pass",
     "idempotent: the ack carries only the sender's rank"},
};

/// Table row for a kind; nullptr when the table misses one (protocol_check
/// and test_parallel_gst assert it never does).
constexpr const GstMsgSpec* find_gst_spec(GstMsgKind kind) noexcept {
  for (const GstMsgSpec& spec : kGstProtocol) {
    if (spec.kind == kind) return &spec;
  }
  return nullptr;
}

// Integer tag aliases (single source of truth: GstMsgKind). The FT path
// carries plain vectors/values — no bespoke codecs — so there are no
// pgasm-wire annotations here; pgasm-lint W015 instead requires each of
// these tags to appear in exactly one declarative protocol table (this one).
inline constexpr int kTagFtHist = to_tag(GstMsgKind::kFtHist);
inline constexpr int kTagFtPlan = to_tag(GstMsgKind::kFtPlan);
inline constexpr int kTagFtSuffix = to_tag(GstMsgKind::kFtSuffix);
inline constexpr int kTagFtDone = to_tag(GstMsgKind::kFtDone);
inline constexpr int kTagFtFinal = to_tag(GstMsgKind::kFtFinal);
inline constexpr int kTagFtPlanReq = to_tag(GstMsgKind::kFtPlanReq);
inline constexpr int kTagFtFinalAck = to_tag(GstMsgKind::kFtFinalAck);

}  // namespace pgasm::gst
