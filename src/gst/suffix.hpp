// Suffix enumeration for the generalized suffix tree.
//
// A suffix is (sequence id, start position). Its *effective length* runs to
// the next masked character or the sequence end: masked symbols act as hard
// breaks, so no exact match can span them (this is how repeat masking keeps
// repeats from seeding promising pairs). Suffixes shorter than the minimum
// match cutoff ψ cannot carry a qualifying maximal match and are dropped at
// enumeration time — with w <= ψ this also guarantees every kept suffix has
// a full w-length bucket prefix for the parallel construction (Section 6).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/fragment_store.hpp"

namespace pgasm::gst {

/// Character classes used by lsets: λ (suffix starts the fragment or is
/// preceded by a masked character) plus the four bases.
inline constexpr std::uint8_t kClassLambda = 0;
inline constexpr int kNumClasses = 5;  // λ, A, C, G, T

struct Suffix {
  std::uint32_t seq = 0;   ///< sequence id within the input store
  std::uint32_t pos = 0;   ///< start position (0-based)
  std::uint32_t len = 0;   ///< effective length (to mask break / end)
  std::uint8_t cls = 0;    ///< preceding-character class (lset class)
};

/// Enumerate all suffixes of `store` with effective length >= min_len.
/// Positions inside masked runs are skipped entirely.
std::vector<Suffix> enumerate_suffixes(const seq::FragmentStore& store,
                                       std::uint32_t min_len);

/// Same, restricted to sequence ids in [seq_begin, seq_end) — used by the
/// parallel construction where each rank owns a contiguous slice.
std::vector<Suffix> enumerate_suffixes_range(const seq::FragmentStore& store,
                                             std::uint32_t seq_begin,
                                             std::uint32_t seq_end,
                                             std::uint32_t min_len);

/// Bucket id of a suffix: the base-4 value of its first w characters.
/// Requires suffix.len >= w (guaranteed by enumeration with min_len >= w).
std::uint32_t bucket_of(const seq::FragmentStore& store, const Suffix& s,
                        std::uint32_t w) noexcept;

/// Number of buckets for prefix length w: 4^w.
constexpr std::uint32_t num_buckets(std::uint32_t w) noexcept {
  return 1u << (2 * w);
}

/// Preceding-character class of a suffix of `text` at position pos.
inline std::uint8_t class_of(std::span<const seq::Code> text,
                             std::uint32_t pos) noexcept {
  if (pos == 0 || !seq::is_base(text[pos - 1])) return kClassLambda;
  return static_cast<std::uint8_t>(1 + text[pos - 1]);
}

}  // namespace pgasm::gst
