#include "gst/parallel_build.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/timer.hpp"

namespace pgasm::gst {

namespace {

/// Owner rank of a global sequence id under a contiguous partition.
int owner_of(const std::vector<std::uint32_t>& slice_begin,
             std::uint32_t seq_id) {
  const auto it =
      std::upper_bound(slice_begin.begin(), slice_begin.end(), seq_id);
  return static_cast<int>(it - slice_begin.begin()) - 1;
}

}  // namespace

std::vector<std::uint32_t> partition_store(const seq::FragmentStore& store,
                                           int num_ranks) {
  // Greedy sweep: cut whenever the running character count passes the next
  // multiple of N/p. Contiguous and deterministic.
  PGASM_ASSERT(num_ranks >= 1, "partition needs at least one rank");
  if (num_ranks < 1) return {0, static_cast<std::uint32_t>(store.size())};
  const std::uint64_t total = store.total_length();
  const std::uint64_t per_rank = std::max<std::uint64_t>(1, total / num_ranks);
  std::vector<std::uint32_t> slice_begin(static_cast<std::size_t>(num_ranks) + 1,
                                         static_cast<std::uint32_t>(store.size()));
  slice_begin[0] = 0;
  std::uint64_t acc = 0;
  int next_cut = 1;
  for (std::uint32_t s = 0; s < store.size() && next_cut < num_ranks; ++s) {
    acc += store.length(s);
    if (acc >= per_rank * static_cast<std::uint64_t>(next_cut)) {
      slice_begin[next_cut++] = s + 1;
    }
  }
  for (int r = next_cut; r < num_ranks; ++r)
    slice_begin[r] = slice_begin[next_cut - 1];
  slice_begin[num_ranks] = static_cast<std::uint32_t>(store.size());
  // Ensure monotonicity (degenerate inputs).
  for (int r = 1; r <= num_ranks; ++r)
    slice_begin[r] = std::max(slice_begin[r], slice_begin[r - 1]);
  return slice_begin;
}

std::vector<std::int32_t> assign_buckets(
    const std::vector<std::uint64_t>& global_histogram, int num_ranks) {
  std::vector<std::int32_t> owner(global_histogram.size(), -1);
  // Greedy LPT: heaviest bucket first onto the least-loaded rank.
  std::vector<std::uint32_t> idx;
  idx.reserve(global_histogram.size());
  for (std::uint32_t b = 0; b < global_histogram.size(); ++b)
    if (global_histogram[b] > 0) idx.push_back(b);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return global_histogram[a] > global_histogram[b];
                   });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(num_ranks), 0);
  for (std::uint32_t b : idx) {
    int best = 0;
    for (int r = 1; r < num_ranks; ++r)
      if (load[r] < load[best]) best = r;
    owner[b] = best;
    load[best] += global_histogram[b];
  }
  return owner;
}

DistributedGst build_distributed_gst(vmpi::Comm& comm,
                                     const seq::FragmentStore& global,
                                     const ParallelGstParams& params) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::uint32_t w = params.gst.prefix_w;
  if (w == 0 || w > params.gst.min_match)
    throw std::runtime_error("parallel GST requires 0 < prefix_w <= psi");

  DistributedGst result;
  GstBuildStats& stats = result.stats;
  const auto ledger_before = comm.ledger();

  // ---- Step 1: enumerate suffixes of the local slice. -------------------
  const auto slice = partition_store(global, p);
  std::vector<Suffix> my_suffixes;
  {
    obs::Span sp = obs::span(rank, "enumerate_suffixes", "gst");
    auto scope = comm.compute_scope();
    my_suffixes = enumerate_suffixes_range(global, slice[rank], slice[rank + 1],
                                           params.gst.min_match);
    sp.arg("suffixes", my_suffixes.size());
  }

  // ---- Step 2: global bucket histogram and deterministic assignment. ----
  const std::uint32_t nbuckets = num_buckets(w);
  std::vector<std::uint64_t> hist(nbuckets, 0);
  {
    obs::Span sp = obs::span(rank, "bucket_histogram", "gst");
    {
      auto scope = comm.compute_scope();
      for (const Suffix& s : my_suffixes) ++hist[bucket_of(global, s, w)];
    }
    hist = comm.allreduce_vector(std::move(hist),
                                 [](std::uint64_t a, std::uint64_t b) {
                                   return a + b;
                                 });
  }
  std::vector<std::int32_t> bucket_owner;
  {
    auto scope = comm.compute_scope();
    if (params.exclude_rank0 && p > 1) {
      bucket_owner = assign_buckets(hist, p - 1);
      for (auto& o : bucket_owner)
        if (o >= 0) ++o;  // shift workers to ranks 1..p-1
    } else {
      bucket_owner = assign_buckets(hist, p);
    }
    result.bucket_owner = bucket_owner;
  }

  // ---- Step 3: redistribute suffixes to bucket owners. ------------------
  obs::Span redist_span = obs::span(rank, "redistribute", "gst");
  const std::uint64_t bytes_before_redist = comm.ledger().bytes_sent;
  std::vector<std::vector<Suffix>> outgoing(static_cast<std::size_t>(p));
  {
    auto scope = comm.compute_scope();
    for (const Suffix& s : my_suffixes) {
      outgoing[bucket_owner[bucket_of(global, s, w)]].push_back(s);
    }
    my_suffixes.clear();
    my_suffixes.shrink_to_fit();
  }
  auto incoming = comm.staged_alltoallv(outgoing);
  outgoing.clear();
  redist_span.arg("bytes_sent", comm.ledger().bytes_sent - bytes_before_redist);
  redist_span.finish();

  std::vector<Suffix> local_suffixes;
  {
    auto scope = comm.compute_scope();
    std::size_t total = 0;
    for (const auto& v : incoming) total += v.size();
    local_suffixes.reserve(total);
    for (auto& v : incoming) {
      local_suffixes.insert(local_suffixes.end(), v.begin(), v.end());
      v.clear();
      v.shrink_to_fit();
    }
  }
  stats.local_suffixes = local_suffixes.size();

  // ---- Step 4: fetch the fragments the local subtrees need. -------------
  // Needed global ids, sorted.
  std::vector<std::uint32_t> needed;
  {
    auto scope = comm.compute_scope();
    needed.reserve(local_suffixes.size() / 4 + 1);
    for (const Suffix& s : local_suffixes) needed.push_back(s.seq);
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  }

  // Local ids are assigned in sorted global-id order.
  result.local_to_global = needed;
  std::uint64_t needed_chars = 0;
  for (std::uint32_t g : needed) needed_chars += global.length(g);
  result.local_store.reserve(needed.size(), needed_chars);

  // Batched request/serve rounds. Each round: Alltoallv of requested ids,
  // then Alltoallv of serialized fragment payloads [id, len, codes...].
  const std::uint64_t batch_chars =
      params.fetch_batch_chars == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : params.fetch_batch_chars;
  std::size_t cursor = 0;  // into `needed`
  // Fetched payloads keyed by global id (filled across rounds).
  std::vector<std::vector<seq::Code>> fetched(needed.size());
  // Map global id -> local index for fill-in.
  auto local_index_of = [&](std::uint32_t g) {
    return static_cast<std::size_t>(
        std::lower_bound(needed.begin(), needed.end(), g) - needed.begin());
  };

  for (;;) {
    obs::Span round_span = obs::span(rank, "fetch_round", "gst");
    round_span.arg("round", stats.fetch_rounds);
    // Build this round's batch of requests (own-slice ids are read directly
    // from the global store: no message needed for data we already own).
    std::vector<std::vector<std::uint32_t>> req(static_cast<std::size_t>(p));
    std::uint64_t batch_acc = 0;
    {
      auto scope = comm.compute_scope();
      while (cursor < needed.size() && batch_acc < batch_chars) {
        const std::uint32_t g = needed[cursor];
        const int own = owner_of(slice, g);
        if (own != rank) {
          req[own].push_back(g);
          batch_acc += global.length(g);
        } else {
          const auto s = global.seq(g);
          fetched[local_index_of(g)].assign(s.begin(), s.end());
        }
        ++cursor;
      }
    }
    const std::uint64_t remaining = needed.size() - cursor;
    const std::uint64_t any_left = comm.allreduce_max<std::uint64_t>(remaining);

    // Request round.
    auto requests = comm.staged_alltoallv(req);
    // Serve round: serialize [id u32][len u32][codes ...] per fragment.
    std::vector<std::vector<std::uint8_t>> serve(static_cast<std::size_t>(p));
    {
      auto scope = comm.compute_scope();
      for (int d = 0; d < p; ++d) {
        for (std::uint32_t g : requests[d]) {
          const auto s = global.seq(g);
          const std::uint32_t len = static_cast<std::uint32_t>(s.size());
          auto& buf = serve[d];
          const std::size_t base = buf.size();
          buf.resize(base + 8 + s.size());
          std::memcpy(buf.data() + base, &g, 4);
          std::memcpy(buf.data() + base + 4, &len, 4);
          if (!s.empty())
            std::memcpy(buf.data() + base + 8, s.data(), s.size());
        }
      }
    }
    auto payloads = comm.staged_alltoallv(serve);
    {
      auto scope = comm.compute_scope();
      for (const auto& buf : payloads) {
        std::size_t off = 0;
        while (off < buf.size()) {
          std::uint32_t g, len;
          std::memcpy(&g, buf.data() + off, 4);
          std::memcpy(&len, buf.data() + off + 4, 4);
          auto& dst = fetched[local_index_of(g)];
          dst.resize(len);
          if (len != 0) std::memcpy(dst.data(), buf.data() + off + 8, len);
          off += 8 + len;
          ++stats.fetched_fragments;
        }
      }
    }
    ++stats.fetch_rounds;
    if (any_left == 0) break;
  }

  // Materialize the local store in local-id order.
  {
    auto scope = comm.compute_scope();
    for (std::size_t i = 0; i < needed.size(); ++i) {
      result.local_store.add(fetched[i], global.type(needed[i]));
      fetched[i].clear();
      fetched[i].shrink_to_fit();
    }
  }

  // ---- Step 5: remap suffixes to local ids, group by bucket, build. -----
  {
    obs::Span sp = obs::span(rank, "build_subtrees", "gst");
    auto scope = comm.compute_scope();
    // Group suffixes by bucket: counting sort over this rank's buckets.
    // Recompute bucket ids from the local store after remapping.
    for (Suffix& s : local_suffixes) {
      s.seq = static_cast<std::uint32_t>(local_index_of(s.seq));
    }
    std::vector<std::uint32_t> bucket_ids(local_suffixes.size());
    std::vector<std::uint32_t> mine;  // this rank's non-empty buckets
    {
      // Dense relabel of owned buckets.
      std::vector<std::int32_t> dense(nbuckets, -1);
      for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
        const std::uint32_t b =
            bucket_of(result.local_store, local_suffixes[i], w);
        if (dense[b] < 0) {
          dense[b] = static_cast<std::int32_t>(mine.size());
          mine.push_back(b);
        }
        bucket_ids[i] = static_cast<std::uint32_t>(dense[b]);
      }
    }
    stats.local_buckets = mine.size();
    sp.arg("buckets", mine.size());
    sp.arg("suffixes", local_suffixes.size());
    std::vector<std::uint32_t> count(mine.size() + 1, 0);
    for (std::uint32_t b : bucket_ids) ++count[b + 1];
    for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
    std::vector<std::uint32_t> bucket_begin(count.begin(), count.end() - 1);
    std::vector<Suffix> grouped(local_suffixes.size());
    for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
      grouped[count[bucket_ids[i]]++] = local_suffixes[i];
    }
    local_suffixes.clear();
    local_suffixes.shrink_to_fit();

    result.tree = std::make_unique<SuffixTree>(
        result.local_store, std::move(grouped), bucket_begin, w, params.gst);
  }
  stats.tree_nodes = result.tree->num_nodes();

  const auto& ledger_after = comm.ledger();
  stats.compute_seconds =
      ledger_after.compute_seconds - ledger_before.compute_seconds;
  stats.comm_seconds = ledger_after.comm_seconds - ledger_before.comm_seconds;
  stats.bytes_sent = ledger_after.bytes_sent - ledger_before.bytes_sent;

  // Publish this rank's build stats so GstBuildStats and the obs export
  // agree. Safe from rank threads: instrument updates are atomic.
  if (obs::tracer().enabled()) {
    auto& reg = obs::registry();
    const char* phase = obs::current_phase();
    reg.counter("gst.local_suffixes", rank, phase).inc(stats.local_suffixes);
    reg.counter("gst.local_buckets", rank, phase).inc(stats.local_buckets);
    reg.counter("gst.fetched_fragments", rank, phase)
        .inc(stats.fetched_fragments);
    reg.counter("gst.fetch_rounds", rank, phase).inc(stats.fetch_rounds);
    reg.counter("gst.tree_nodes", rank, phase).inc(stats.tree_nodes);
    reg.counter("gst.bytes_sent", rank, phase).inc(stats.bytes_sent);
    reg.gauge("gst.compute_seconds", rank, phase).add(stats.compute_seconds);
    reg.gauge("gst.comm_seconds", rank, phase).add(stats.comm_seconds);
  }
  return result;
}

DistributedGst rebuild_rank_portion(
    const seq::FragmentStore& global,
    const std::vector<std::int32_t>& bucket_owner, int role,
    const ParallelGstParams& params) {
  const std::uint32_t w = params.gst.prefix_w;
  if (num_buckets(w) != bucket_owner.size())
    throw std::runtime_error("rebuild_rank_portion: bucket table mismatch");

  DistributedGst result;
  GstBuildStats& stats = result.stats;

  // Enumerate the full store (equals the concatenation of every rank's
  // slice enumeration) and keep only the role's buckets, preserving order.
  std::vector<Suffix> local_suffixes;
  {
    auto all = enumerate_suffixes(global, params.gst.min_match);
    local_suffixes.reserve(all.size() / 4 + 1);
    for (const Suffix& s : all) {
      if (bucket_owner[bucket_of(global, s, w)] == role)
        local_suffixes.push_back(s);
    }
  }
  stats.local_suffixes = local_suffixes.size();

  // Needed global ids, sorted — local ids are assigned in sorted order,
  // matching the distributed build's rule.
  std::vector<std::uint32_t> needed;
  needed.reserve(local_suffixes.size() / 4 + 1);
  for (const Suffix& s : local_suffixes) needed.push_back(s.seq);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  result.local_to_global = needed;
  result.bucket_owner = bucket_owner;

  std::uint64_t needed_chars = 0;
  for (std::uint32_t g : needed) needed_chars += global.length(g);
  result.local_store.reserve(needed.size(), needed_chars);
  for (std::uint32_t g : needed)
    result.local_store.add(global.seq(g), global.type(g));

  auto local_index_of = [&](std::uint32_t g) {
    return static_cast<std::size_t>(
        std::lower_bound(needed.begin(), needed.end(), g) - needed.begin());
  };
  for (Suffix& s : local_suffixes)
    s.seq = static_cast<std::uint32_t>(local_index_of(s.seq));

  // Group by bucket: dense relabel in first-seen order + counting sort,
  // exactly as in build_distributed_gst step 5.
  const std::uint32_t nbuckets = num_buckets(w);
  std::vector<std::uint32_t> bucket_ids(local_suffixes.size());
  std::vector<std::uint32_t> mine;
  {
    std::vector<std::int32_t> dense(nbuckets, -1);
    for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
      const std::uint32_t b =
          bucket_of(result.local_store, local_suffixes[i], w);
      if (dense[b] < 0) {
        dense[b] = static_cast<std::int32_t>(mine.size());
        mine.push_back(b);
      }
      bucket_ids[i] = static_cast<std::uint32_t>(dense[b]);
    }
  }
  stats.local_buckets = mine.size();
  std::vector<std::uint32_t> count(mine.size() + 1, 0);
  for (std::uint32_t b : bucket_ids) ++count[b + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<std::uint32_t> bucket_begin(count.begin(), count.end() - 1);
  std::vector<Suffix> grouped(local_suffixes.size());
  for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
    grouped[count[bucket_ids[i]]++] = local_suffixes[i];
  }
  local_suffixes.clear();

  result.tree = std::make_unique<SuffixTree>(
      result.local_store, std::move(grouped), bucket_begin, w, params.gst);
  stats.tree_nodes = result.tree->num_nodes();
  return result;
}

}  // namespace pgasm::gst
