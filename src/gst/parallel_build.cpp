#include "gst/parallel_build.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "gst/gst_protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/timer.hpp"

namespace pgasm::gst {

namespace {

/// Owner rank of a global sequence id under a contiguous partition.
int owner_of(const std::vector<std::uint32_t>& slice_begin,
             std::uint32_t seq_id) {
  const auto it =
      std::upper_bound(slice_begin.begin(), slice_begin.end(), seq_id);
  return static_cast<int>(it - slice_begin.begin()) - 1;
}

// Fault-tolerant construction tags (coordinator = rank 0) come from
// gst_protocol.hpp, where the protocol is declared as data: one
// GstMsgSpec row per tag with its recovery/duplicate story, cross-checked
// by tools/protocol_check and pgasm-lint W015.

/// Fill `result`'s local store and id map from the global store for the
/// suffixes in `local_suffixes` (global seq ids, canonical order), then
/// remap the suffixes to local ids. Local ids are assigned in sorted
/// global-id order — the same rule the distributed fetch path uses, so a
/// portion built this way is bit-identical to the one the owning rank
/// would have built.
void materialize_from_global(DistributedGst& result,
                             const seq::FragmentStore& global,
                             std::vector<Suffix>& local_suffixes) {
  std::vector<std::uint32_t> needed;
  needed.reserve(local_suffixes.size() / 4 + 1);
  for (const Suffix& s : local_suffixes) needed.push_back(s.seq);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  result.local_to_global = needed;

  std::uint64_t needed_chars = 0;
  for (std::uint32_t g : needed) needed_chars += global.length(g);
  result.local_store.reserve(needed.size(), needed_chars);
  for (std::uint32_t g : needed)
    result.local_store.add(global.seq(g), global.type(g));

  for (Suffix& s : local_suffixes) {
    s.seq = static_cast<std::uint32_t>(
        std::lower_bound(needed.begin(), needed.end(), s.seq) -
        needed.begin());
  }
}

/// Group remapped suffixes by bucket (dense relabel in first-seen order +
/// counting sort) and build the subtree forest — step 5 of the build,
/// shared by the collective, fault-tolerant, and serial-rebuild paths so
/// all three produce identical trees from identical suffix streams.
void group_and_build(DistributedGst& result,
                     std::vector<Suffix> local_suffixes,
                     const ParallelGstParams& params) {
  const std::uint32_t w = params.gst.prefix_w;
  const std::uint32_t nbuckets = num_buckets(w);
  std::vector<std::uint32_t> bucket_ids(local_suffixes.size());
  std::vector<std::uint32_t> mine;  // this rank's non-empty buckets
  {
    // Dense relabel of owned buckets.
    std::vector<std::int32_t> dense(nbuckets, -1);
    for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
      const std::uint32_t b =
          bucket_of(result.local_store, local_suffixes[i], w);
      if (dense[b] < 0) {
        dense[b] = static_cast<std::int32_t>(mine.size());
        mine.push_back(b);
      }
      bucket_ids[i] = static_cast<std::uint32_t>(dense[b]);
    }
  }
  result.stats.local_buckets = mine.size();
  std::vector<std::uint32_t> count(mine.size() + 1, 0);
  for (std::uint32_t b : bucket_ids) ++count[b + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<std::uint32_t> bucket_begin(count.begin(), count.end() - 1);
  std::vector<Suffix> grouped(local_suffixes.size());
  for (std::size_t i = 0; i < local_suffixes.size(); ++i) {
    grouped[count[bucket_ids[i]]++] = local_suffixes[i];
  }
  local_suffixes.clear();
  local_suffixes.shrink_to_fit();

  result.tree = std::make_unique<SuffixTree>(
      result.local_store, std::move(grouped), bucket_begin, w, params.gst);
  result.stats.tree_nodes = result.tree->num_nodes();
}

/// What rank `src` would send rank `dest` in the suffix redistribution:
/// the suffixes of src's slice whose bucket `dest` owns, in enumeration
/// order. Pure function of (store, slice table, owner table), so a
/// receiver that never hears from src can recompute the contribution
/// locally and obtain byte-identical content.
std::vector<Suffix> slice_contribution(
    const seq::FragmentStore& global,
    const std::vector<std::uint32_t>& slice, int src, int dest,
    const std::vector<std::int32_t>& owner, const ParallelGstParams& params) {
  const auto all = enumerate_suffixes_range(global, slice[src], slice[src + 1],
                                            params.gst.min_match);
  std::vector<Suffix> out;
  for (const Suffix& s : all) {
    if (owner[bucket_of(global, s, params.gst.prefix_w)] == dest)
      out.push_back(s);
  }
  return out;
}

/// Publish one rank's build stats to the obs registry (shared by the
/// collective and fault-tolerant paths; recovery.* counters only appear
/// when the fault-tolerant machinery actually engaged).
void publish_gst_obs(int rank, const GstBuildStats& stats) {
  if (!obs::tracer().enabled()) return;
  auto& reg = obs::registry();
  const char* phase = obs::current_phase();
  reg.counter("gst.local_suffixes", rank, phase).inc(stats.local_suffixes);
  reg.counter("gst.local_buckets", rank, phase).inc(stats.local_buckets);
  reg.counter("gst.fetched_fragments", rank, phase)
      .inc(stats.fetched_fragments);
  reg.counter("gst.fetch_rounds", rank, phase).inc(stats.fetch_rounds);
  reg.counter("gst.tree_nodes", rank, phase).inc(stats.tree_nodes);
  reg.counter("gst.bytes_sent", rank, phase).inc(stats.bytes_sent);
  reg.gauge("gst.compute_seconds", rank, phase).add(stats.compute_seconds);
  reg.gauge("gst.comm_seconds", rank, phase).add(stats.comm_seconds);
  if (stats.ranks_recovered)
    reg.counter("recovery.gst_ranks_recovered", rank, phase)
        .inc(stats.ranks_recovered);
  if (stats.buckets_reassigned)
    reg.counter("recovery.gst_buckets_reassigned", rank, phase)
        .inc(stats.buckets_reassigned);
  if (stats.ft_retries)
    reg.counter("recovery.gst_ft_retries", rank, phase)
        .inc(stats.ft_retries);
  if (stats.resumed_from_plan)
    reg.counter("recovery.gst_resumed", rank, phase).inc(1);
  if (stats.portion_rebuilt)
    reg.counter("recovery.gst_portion_rebuilt", rank, phase).inc(1);
}

DistributedGst build_distributed_gst_ft(vmpi::Comm& comm,
                                        const seq::FragmentStore& global,
                                        const ParallelGstParams& params);

}  // namespace

std::vector<std::uint32_t> partition_store(const seq::FragmentStore& store,
                                           int num_ranks) {
  // Greedy sweep: cut whenever the running character count passes the next
  // multiple of N/p. Contiguous and deterministic.
  PGASM_ASSERT(num_ranks >= 1, "partition needs at least one rank");
  if (num_ranks < 1) return {0, static_cast<std::uint32_t>(store.size())};
  const std::uint64_t total = store.total_length();
  const std::uint64_t per_rank = std::max<std::uint64_t>(1, total / num_ranks);
  std::vector<std::uint32_t> slice_begin(static_cast<std::size_t>(num_ranks) + 1,
                                         static_cast<std::uint32_t>(store.size()));
  slice_begin[0] = 0;
  std::uint64_t acc = 0;
  int next_cut = 1;
  for (std::uint32_t s = 0; s < store.size() && next_cut < num_ranks; ++s) {
    acc += store.length(s);
    if (acc >= per_rank * static_cast<std::uint64_t>(next_cut)) {
      slice_begin[next_cut++] = s + 1;
    }
  }
  for (int r = next_cut; r < num_ranks; ++r)
    slice_begin[r] = slice_begin[next_cut - 1];
  slice_begin[num_ranks] = static_cast<std::uint32_t>(store.size());
  // Ensure monotonicity (degenerate inputs).
  for (int r = 1; r <= num_ranks; ++r)
    slice_begin[r] = std::max(slice_begin[r], slice_begin[r - 1]);
  return slice_begin;
}

std::vector<std::int32_t> assign_buckets(
    const std::vector<std::uint64_t>& global_histogram, int num_ranks) {
  std::vector<std::int32_t> owner(global_histogram.size(), -1);
  // Greedy LPT: heaviest bucket first onto the least-loaded rank.
  std::vector<std::uint32_t> idx;
  idx.reserve(global_histogram.size());
  for (std::uint32_t b = 0; b < global_histogram.size(); ++b)
    if (global_histogram[b] > 0) idx.push_back(b);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return global_histogram[a] > global_histogram[b];
                   });
  std::vector<std::uint64_t> load(static_cast<std::size_t>(num_ranks), 0);
  for (std::uint32_t b : idx) {
    int best = 0;
    for (int r = 1; r < num_ranks; ++r)
      if (load[r] < load[best]) best = r;
    owner[b] = best;
    load[best] += global_histogram[b];
  }
  return owner;
}

DistributedGst build_distributed_gst(vmpi::Comm& comm,
                                     const seq::FragmentStore& global,
                                     const ParallelGstParams& params) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::uint32_t w = params.gst.prefix_w;
  if (w == 0 || w > params.gst.min_match)
    throw std::runtime_error("parallel GST requires 0 < prefix_w <= psi");

  if (params.resume_bucket_owner != nullptr) {
    // Resume from a recorded owner table: every rank rebuilds its portion
    // locally, zero construction traffic. The recorded table is the final
    // one all survivors agreed on, so clustering's per-role resume
    // positions stay valid.
    auto scope = comm.compute_scope();
    DistributedGst result =
        rebuild_rank_portion(global, *params.resume_bucket_owner, rank, params);
    result.stats.resumed_from_plan = 1;
    publish_gst_obs(rank, result.stats);
    return result;
  }
  if (params.fault_tolerant && p > 1) {
    return build_distributed_gst_ft(comm, global, params);
  }

  DistributedGst result;
  GstBuildStats& stats = result.stats;
  const auto ledger_before = comm.ledger();

  // ---- Step 1: enumerate suffixes of the local slice. -------------------
  const auto slice = partition_store(global, p);
  std::vector<Suffix> my_suffixes;
  {
    obs::Span sp = obs::span(rank, "enumerate_suffixes", "gst");
    auto scope = comm.compute_scope();
    my_suffixes = enumerate_suffixes_range(global, slice[rank], slice[rank + 1],
                                           params.gst.min_match);
    sp.arg("suffixes", my_suffixes.size());
  }

  // ---- Step 2: global bucket histogram and deterministic assignment. ----
  const std::uint32_t nbuckets = num_buckets(w);
  std::vector<std::uint64_t> hist(nbuckets, 0);
  {
    obs::Span sp = obs::span(rank, "bucket_histogram", "gst");
    {
      auto scope = comm.compute_scope();
      for (const Suffix& s : my_suffixes) ++hist[bucket_of(global, s, w)];
    }
    hist = comm.allreduce_vector(std::move(hist),
                                 [](std::uint64_t a, std::uint64_t b) {
                                   return a + b;
                                 });
  }
  std::vector<std::int32_t> bucket_owner;
  {
    auto scope = comm.compute_scope();
    if (params.exclude_rank0 && p > 1) {
      bucket_owner = assign_buckets(hist, p - 1);
      for (auto& o : bucket_owner)
        if (o >= 0) ++o;  // shift workers to ranks 1..p-1
    } else {
      bucket_owner = assign_buckets(hist, p);
    }
    result.bucket_owner = bucket_owner;
  }

  // ---- Step 3: redistribute suffixes to bucket owners. ------------------
  obs::Span redist_span = obs::span(rank, "redistribute", "gst");
  const std::uint64_t bytes_before_redist = comm.ledger().bytes_sent;
  std::vector<std::vector<Suffix>> outgoing(static_cast<std::size_t>(p));
  {
    auto scope = comm.compute_scope();
    for (const Suffix& s : my_suffixes) {
      outgoing[bucket_owner[bucket_of(global, s, w)]].push_back(s);
    }
    my_suffixes.clear();
    my_suffixes.shrink_to_fit();
  }
  auto incoming = comm.staged_alltoallv(outgoing);
  outgoing.clear();
  redist_span.arg("bytes_sent", comm.ledger().bytes_sent - bytes_before_redist);
  redist_span.finish();

  std::vector<Suffix> local_suffixes;
  {
    auto scope = comm.compute_scope();
    std::size_t total = 0;
    for (const auto& v : incoming) total += v.size();
    local_suffixes.reserve(total);
    for (auto& v : incoming) {
      local_suffixes.insert(local_suffixes.end(), v.begin(), v.end());
      v.clear();
      v.shrink_to_fit();
    }
  }
  stats.local_suffixes = local_suffixes.size();

  // ---- Step 4: fetch the fragments the local subtrees need. -------------
  // Needed global ids, sorted.
  std::vector<std::uint32_t> needed;
  {
    auto scope = comm.compute_scope();
    needed.reserve(local_suffixes.size() / 4 + 1);
    for (const Suffix& s : local_suffixes) needed.push_back(s.seq);
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  }

  // Local ids are assigned in sorted global-id order.
  result.local_to_global = needed;
  std::uint64_t needed_chars = 0;
  for (std::uint32_t g : needed) needed_chars += global.length(g);
  result.local_store.reserve(needed.size(), needed_chars);

  // Batched request/serve rounds. Each round: Alltoallv of requested ids,
  // then Alltoallv of serialized fragment payloads [id, len, codes...].
  const std::uint64_t batch_chars =
      params.fetch_batch_chars == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : params.fetch_batch_chars;
  std::size_t cursor = 0;  // into `needed`
  // Fetched payloads keyed by global id (filled across rounds).
  std::vector<std::vector<seq::Code>> fetched(needed.size());
  // Map global id -> local index for fill-in.
  auto local_index_of = [&](std::uint32_t g) {
    return static_cast<std::size_t>(
        std::lower_bound(needed.begin(), needed.end(), g) - needed.begin());
  };

  for (;;) {
    obs::Span round_span = obs::span(rank, "fetch_round", "gst");
    round_span.arg("round", stats.fetch_rounds);
    // Build this round's batch of requests (own-slice ids are read directly
    // from the global store: no message needed for data we already own).
    std::vector<std::vector<std::uint32_t>> req(static_cast<std::size_t>(p));
    std::uint64_t batch_acc = 0;
    {
      auto scope = comm.compute_scope();
      while (cursor < needed.size() && batch_acc < batch_chars) {
        const std::uint32_t g = needed[cursor];
        const int own = owner_of(slice, g);
        if (own != rank) {
          req[own].push_back(g);
          batch_acc += global.length(g);
        } else {
          const auto s = global.seq(g);
          fetched[local_index_of(g)].assign(s.begin(), s.end());
        }
        ++cursor;
      }
    }
    const std::uint64_t remaining = needed.size() - cursor;
    const std::uint64_t any_left = comm.allreduce_max<std::uint64_t>(remaining);

    // Request round.
    auto requests = comm.staged_alltoallv(req);
    // Serve round: serialize [id u32][len u32][codes ...] per fragment.
    std::vector<std::vector<std::uint8_t>> serve(static_cast<std::size_t>(p));
    {
      auto scope = comm.compute_scope();
      for (int d = 0; d < p; ++d) {
        for (std::uint32_t g : requests[d]) {
          const auto s = global.seq(g);
          const std::uint32_t len = static_cast<std::uint32_t>(s.size());
          auto& buf = serve[d];
          const std::size_t base = buf.size();
          buf.resize(base + 8 + s.size());
          std::memcpy(buf.data() + base, &g, 4);
          std::memcpy(buf.data() + base + 4, &len, 4);
          if (!s.empty())
            std::memcpy(buf.data() + base + 8, s.data(), s.size());
        }
      }
    }
    auto payloads = comm.staged_alltoallv(serve);
    {
      auto scope = comm.compute_scope();
      for (const auto& buf : payloads) {
        std::size_t off = 0;
        while (off < buf.size()) {
          std::uint32_t g, len;
          std::memcpy(&g, buf.data() + off, 4);
          std::memcpy(&len, buf.data() + off + 4, 4);
          auto& dst = fetched[local_index_of(g)];
          dst.resize(len);
          if (len != 0) std::memcpy(dst.data(), buf.data() + off + 8, len);
          off += 8 + len;
          ++stats.fetched_fragments;
        }
      }
    }
    ++stats.fetch_rounds;
    if (any_left == 0) break;
  }

  // Materialize the local store in local-id order.
  {
    auto scope = comm.compute_scope();
    for (std::size_t i = 0; i < needed.size(); ++i) {
      result.local_store.add(fetched[i], global.type(needed[i]));
      fetched[i].clear();
      fetched[i].shrink_to_fit();
    }
  }

  // ---- Step 5: remap suffixes to local ids, group by bucket, build. -----
  {
    obs::Span sp = obs::span(rank, "build_subtrees", "gst");
    auto scope = comm.compute_scope();
    for (Suffix& s : local_suffixes) {
      s.seq = static_cast<std::uint32_t>(local_index_of(s.seq));
    }
    sp.arg("suffixes", local_suffixes.size());
    group_and_build(result, std::move(local_suffixes), params);
    sp.arg("buckets", stats.local_buckets);
  }

  const auto& ledger_after = comm.ledger();
  stats.compute_seconds =
      ledger_after.compute_seconds - ledger_before.compute_seconds;
  stats.comm_seconds = ledger_after.comm_seconds - ledger_before.comm_seconds;
  stats.bytes_sent = ledger_after.bytes_sent - ledger_before.bytes_sent;

  // Publish this rank's build stats so GstBuildStats and the obs export
  // agree. Safe from rank threads: instrument updates are atomic.
  publish_gst_obs(rank, stats);
  return result;
}

DistributedGst rebuild_rank_portion(
    const seq::FragmentStore& global,
    const std::vector<std::int32_t>& bucket_owner, int role,
    const ParallelGstParams& params) {
  const std::uint32_t w = params.gst.prefix_w;
  if (num_buckets(w) != bucket_owner.size())
    throw std::runtime_error("rebuild_rank_portion: bucket table mismatch");

  DistributedGst result;

  // Enumerate the full store (equals the concatenation of every rank's
  // slice enumeration) and keep only the role's buckets, preserving order.
  std::vector<Suffix> local_suffixes;
  {
    auto all = enumerate_suffixes(global, params.gst.min_match);
    local_suffixes.reserve(all.size() / 4 + 1);
    for (const Suffix& s : all) {
      if (bucket_owner[bucket_of(global, s, w)] == role)
        local_suffixes.push_back(s);
    }
  }
  result.stats.local_suffixes = local_suffixes.size();
  result.bucket_owner = bucket_owner;

  materialize_from_global(result, global, local_suffixes);
  group_and_build(result, std::move(local_suffixes), params);
  return result;
}

namespace {

// Fault-tolerant construction (coordinator = rank 0).
//
// The key property making recovery cheap: every protocol message's content
// is a pure function of (global store, params, owner table). A receiver
// that times out on a peer therefore recomputes the missing contribution
// locally — identical bytes, identical order — instead of requesting a
// retransmission; dead, slow, and drop-afflicted peers are all handled by
// the same code path. The coordinator collects completion confirmations,
// reassigns the buckets of ranks that never confirm (mirroring clustering's
// batch takeover), and distributes one final owner table that every
// survivor agrees on. A survivor whose owned-bucket set changed rebuilds
// its portion locally. A worker that cannot obtain the final table after
// bounded retries throws instead of diverging: a missing bucket would lose
// pairs, which is never acceptable, while aborting lets the pipeline
// supervisor retry the phase from checkpoints.
DistributedGst build_distributed_gst_ft(vmpi::Comm& comm,
                                        const seq::FragmentStore& global,
                                        const ParallelGstParams& params) {
  const int p = comm.size();
  const int rank = comm.rank();
  const std::uint32_t w = params.gst.prefix_w;
  const std::uint32_t nbuckets = num_buckets(w);
  // Bounded patience for the two worker waits that cannot be recomputed
  // locally (the plan and the final table both originate at rank 0).
  constexpr int kCoordinatorWaitTries = 60;

  DistributedGst result;
  GstBuildStats& stats = result.stats;
  const auto ledger_before = comm.ledger();
  const auto slice = partition_store(global, p);

  // ---- Step 1: enumerate the local slice; local bucket histogram. -------
  std::vector<Suffix> my_suffixes;
  std::vector<std::uint64_t> hist(nbuckets, 0);
  {
    obs::Span sp = obs::span(rank, "ft_enumerate", "gst");
    auto scope = comm.compute_scope();
    my_suffixes = enumerate_suffixes_range(global, slice[rank],
                                           slice[rank + 1],
                                           params.gst.min_match);
    for (const Suffix& s : my_suffixes) ++hist[bucket_of(global, s, w)];
    sp.arg("suffixes", my_suffixes.size());
  }

  // ---- Step 2: coordinator builds and distributes the bucket plan. ------
  std::vector<std::int32_t> plan;
  // Answer queued plan re-requests (coordinator only). Workers re-send
  // kTagFtPlanReq while their plan is missing (dropped or still in
  // flight), so the coordinator drains the queue at every opportunity.
  auto service_plan_reqs = [&]() {
    if (rank != 0 || plan.empty()) return;
    vmpi::Status st;
    while (comm.iprobe(vmpi::kAnySource, kTagFtPlanReq, &st)) {
      (void)comm.recv_value<int>(st.source, kTagFtPlanReq);
      comm.send_vector(st.source, kTagFtPlan, plan);
    }
  };

  if (rank == 0) {
    std::vector<std::uint64_t> ghist = hist;
    std::vector<std::uint8_t> lost(static_cast<std::size_t>(p), 0);
    for (int s = 1; s < p; ++s) {
      double t = params.ft_timeout;
      int tries = 0;
      for (;;) {
        if (comm.rank_failed(s)) {
          lost[s] = 1;
          break;
        }
        try {
          const auto h =
              comm.recv_vector_timeout<std::uint64_t>(s, kTagFtHist, t);
          if (h.size() == ghist.size()) {
            for (std::uint32_t b = 0; b < nbuckets; ++b) ghist[b] += h[b];
          }
          break;
        } catch (const vmpi::TimeoutError&) {
          ++stats.ft_retries;
          if (++tries > params.ft_max_retries) {
            lost[s] = 1;
            break;
          }
          t = std::min(t * 2, params.ft_timeout_cap);
        }
      }
      if (lost[s]) {
        // Silent or dead: its histogram is a deterministic function of its
        // slice, so compute it here instead of waiting any longer.
        ++stats.ranks_recovered;
        auto scope = comm.compute_scope();
        const auto theirs = enumerate_suffixes_range(
            global, slice[s], slice[s + 1], params.gst.min_match);
        for (const Suffix& x : theirs) ++ghist[bucket_of(global, x, w)];
      }
    }
    {
      auto scope = comm.compute_scope();
      // Only ranks believed alive get buckets; a rank wrongly suspected
      // still participates (it follows the plan it eventually receives)
      // and simply owns nothing.
      std::vector<int> cands;
      const int start = (params.exclude_rank0 && p > 1) ? 1 : 0;
      for (int r = start; r < p; ++r)
        if (!lost[r]) cands.push_back(r);
      if (cands.empty())
        throw vmpi::TimeoutError("ft gst: no live ranks to assign buckets");
      const auto idx_owner =
          assign_buckets(ghist, static_cast<int>(cands.size()));
      plan.assign(nbuckets, -1);
      for (std::uint32_t b = 0; b < nbuckets; ++b)
        if (idx_owner[b] >= 0) plan[b] = cands[idx_owner[b]];
    }
    for (int s = 1; s < p; ++s) comm.send_vector(s, kTagFtPlan, plan);
    // ghist survives to the reassignment step below.
    result.bucket_owner = plan;
    hist = std::move(ghist);
  } else {
    comm.send_vector(0, kTagFtHist, hist);
    double t = params.ft_timeout;
    bool got = false;
    for (int tries = 0; tries < kCoordinatorWaitTries && !got; ++tries) {
      try {
        plan = comm.recv_vector_timeout<std::int32_t>(0, kTagFtPlan, t);
        got = true;
      } catch (const vmpi::TimeoutError&) {
        if (comm.rank_failed(0)) throw;  // coordinator death is fatal
        ++stats.ft_retries;
        comm.send_value<int>(0, kTagFtPlanReq, rank);
        t = std::min(t * 2, params.ft_timeout_cap);
      }
    }
    if (!got)
      throw vmpi::TimeoutError("ft gst: no bucket plan from coordinator");
    if (plan.size() != nbuckets)
      throw std::runtime_error("ft gst: bucket plan size mismatch");
    result.bucket_owner = plan;
  }

  // ---- Step 3: point-to-point suffix redistribution. --------------------
  // Send every peer its contribution up front (sends never block), then
  // collect contributions in ascending source order — the concatenation
  // equals the global enumeration order, exactly as the collective path's
  // staged alltoallv guarantees. A silent source's part is recomputed.
  obs::Span redist_span = obs::span(rank, "ft_redistribute", "gst");
  std::vector<std::vector<Suffix>> outgoing(static_cast<std::size_t>(p));
  {
    auto scope = comm.compute_scope();
    for (const Suffix& s : my_suffixes)
      outgoing[plan[bucket_of(global, s, w)]].push_back(s);
    my_suffixes.clear();
    my_suffixes.shrink_to_fit();
  }
  for (int d = 0; d < p; ++d)
    if (d != rank) comm.send_vector(d, kTagFtSuffix, outgoing[d]);

  std::vector<Suffix> local_suffixes;
  for (int s = 0; s < p; ++s) {
    std::vector<Suffix> part;
    if (s == rank) {
      part = std::move(outgoing[s]);
    } else {
      double t = params.ft_timeout;
      int tries = 0;
      bool got = false;
      for (;;) {
        if (comm.rank_failed(s)) break;
        try {
          part = comm.recv_vector_timeout<Suffix>(s, kTagFtSuffix, t);
          got = true;
          break;
        } catch (const vmpi::TimeoutError&) {
          ++stats.ft_retries;
          service_plan_reqs();
          if (++tries > params.ft_max_retries) break;
          t = std::min(t * 2, params.ft_timeout_cap);
        }
      }
      if (!got) {
        ++stats.ranks_recovered;
        auto scope = comm.compute_scope();
        part = slice_contribution(global, slice, s, rank, plan, params);
      }
    }
    local_suffixes.insert(local_suffixes.end(), part.begin(), part.end());
  }
  outgoing.clear();
  stats.local_suffixes = local_suffixes.size();
  redist_span.finish();

  // ---- Steps 4+5: materialize fragments locally, group, build. ----------
  // The fault-tolerant path reads fragment text straight from the global
  // store (in-process it is shared memory); the batched fetch protocol
  // would otherwise need its own recovery story for no correctness gain.
  // The multi-process vmpi backend will need a fetch-with-timeout here.
  {
    obs::Span sp = obs::span(rank, "ft_build_subtrees", "gst");
    auto scope = comm.compute_scope();
    materialize_from_global(result, global, local_suffixes);
    group_and_build(result, std::move(local_suffixes), params);
    sp.arg("buckets", stats.local_buckets);
  }

  // ---- Step 6: confirm completion; coordinator reassigns stragglers. ----
  std::vector<std::int32_t> final_table;
  if (rank == 0) {
    std::vector<std::uint8_t> done(static_cast<std::size_t>(p), 0);
    // p >= 1 (this branch is rank 0); the guard exists because GCC's
    // -Wnull-dereference cannot prove the vector's data pointer non-null.
    if (!done.empty()) done.front() = 1;
    auto all_done = [&]() {
      for (int s = 1; s < p; ++s)
        if (!done[s] && !comm.rank_failed(s)) return false;
      return true;
    };
    double t = params.ft_timeout;
    int idle = 0;
    while (!all_done() && idle <= params.ft_max_retries) {
      service_plan_reqs();
      try {
        const vmpi::Status st =
            comm.probe_timeout(vmpi::kAnySource, kTagFtDone, t);
        (void)comm.recv_value<int>(st.source, kTagFtDone);
        done[st.source] = 1;
        idle = 0;
        t = params.ft_timeout;
      } catch (const vmpi::TimeoutError&) {
        ++stats.ft_retries;
        ++idle;
        t = std::min(t * 2, params.ft_timeout_cap);
      }
    }

    // Buckets owned by ranks that died or never confirmed move to
    // confirmed survivors (LPT over current loads, heaviest first).
    final_table = plan;
    std::vector<std::uint8_t> keep(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r)
      keep[r] = done[r] && !comm.rank_failed(r) ? 1 : 0;
    std::vector<int> confirmed;
    const int start = (params.exclude_rank0 && p > 1) ? 1 : 0;
    for (int r = start; r < p; ++r)
      if (keep[r]) confirmed.push_back(r);
    if (confirmed.empty())
      throw vmpi::TimeoutError("ft gst: every bucket owner was lost");
    {
      auto scope = comm.compute_scope();
      std::vector<int> idx_of(static_cast<std::size_t>(p), -1);
      for (std::size_t i = 0; i < confirmed.size(); ++i)
        idx_of[confirmed[i]] = static_cast<int>(i);
      std::vector<std::uint64_t> load(confirmed.size(), 0);
      std::vector<std::uint32_t> orphans;
      for (std::uint32_t b = 0; b < nbuckets; ++b) {
        const std::int32_t o = final_table[b];
        if (o < 0) continue;
        if (keep[o]) {
          load[idx_of[o]] += hist[b];
        } else {
          orphans.push_back(b);
        }
      }
      std::stable_sort(orphans.begin(), orphans.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return hist[a] > hist[b];
                       });
      for (const std::uint32_t b : orphans) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < load.size(); ++i)
          if (load[i] < load[best]) best = i;
        final_table[b] = confirmed[best];
        load[best] += hist[b];
        ++stats.buckets_reassigned;
      }
    }

    // Distribute the final table and wait for acknowledgements so no
    // survivor is left on the stale plan (its Final may have been
    // dropped; duplicate Done messages double as re-requests).
    for (int s = 1; s < p; ++s)
      if (!comm.rank_failed(s)) comm.send_vector(s, kTagFtFinal, final_table);
    std::vector<std::uint8_t> acked(static_cast<std::size_t>(p), 1);
    for (int s = 1; s < p; ++s) acked[s] = keep[s] ? 0 : 1;
    auto all_acked = [&]() {
      for (int s = 1; s < p; ++s)
        if (!acked[s] && !comm.rank_failed(s)) return false;
      return true;
    };
    double ta = params.ft_timeout;
    int ack_idle = 0;
    while (!all_acked() && ack_idle <= params.ft_max_retries) {
      service_plan_reqs();
      vmpi::Status st;
      while (comm.iprobe(vmpi::kAnySource, kTagFtDone, &st)) {
        (void)comm.recv_value<int>(st.source, kTagFtDone);
        if (!comm.rank_failed(st.source))
          comm.send_vector(st.source, kTagFtFinal, final_table);
      }
      try {
        const vmpi::Status ast =
            comm.probe_timeout(vmpi::kAnySource, kTagFtFinalAck, ta);
        (void)comm.recv_value<int>(ast.source, kTagFtFinalAck);
        acked[ast.source] = 1;
        ack_idle = 0;
        ta = params.ft_timeout;
      } catch (const vmpi::TimeoutError&) {
        ++stats.ft_retries;
        ++ack_idle;
        for (int s = 1; s < p; ++s)
          if (!acked[s] && !comm.rank_failed(s))
            comm.send_vector(s, kTagFtFinal, final_table);
        ta = std::min(ta * 2, params.ft_timeout_cap);
      }
    }
  } else {
    comm.send_value<int>(0, kTagFtDone, rank);
    double t = params.ft_timeout;
    bool got = false;
    for (int tries = 0; tries < kCoordinatorWaitTries && !got; ++tries) {
      try {
        final_table = comm.recv_vector_timeout<std::int32_t>(0, kTagFtFinal, t);
        got = true;
      } catch (const vmpi::TimeoutError&) {
        if (comm.rank_failed(0)) throw;
        ++stats.ft_retries;
        comm.send_value<int>(0, kTagFtDone, rank);
        t = std::min(t * 2, params.ft_timeout_cap);
      }
    }
    // One-table invariant: a survivor that cannot learn the final table
    // must not proceed on the stale plan — a diverged table could leave a
    // bucket unowned (lost pairs). Abort and let the supervisor retry.
    if (!got)
      throw vmpi::TimeoutError("ft gst: no final owner table");
    if (final_table.size() != nbuckets)
      throw std::runtime_error("ft gst: final owner table size mismatch");
    comm.send_value<int>(0, kTagFtFinalAck, rank);
  }

  // ---- Step 7: adopt the final table; rebuild if our share changed. -----
  if (final_table != plan) {
    bool mine_changed = false;
    for (std::uint32_t b = 0; b < nbuckets && !mine_changed; ++b)
      mine_changed = (plan[b] == rank) != (final_table[b] == rank);
    if (mine_changed) {
      auto scope = comm.compute_scope();
      DistributedGst rebuilt =
          rebuild_rank_portion(global, final_table, rank, params);
      rebuilt.stats.ranks_recovered = stats.ranks_recovered;
      rebuilt.stats.ft_retries = stats.ft_retries;
      rebuilt.stats.buckets_reassigned = stats.buckets_reassigned;
      rebuilt.stats.portion_rebuilt = 1;
      result = std::move(rebuilt);
    } else {
      result.bucket_owner = final_table;
    }
  }

  const auto& ledger_after = comm.ledger();
  stats.compute_seconds =
      ledger_after.compute_seconds - ledger_before.compute_seconds;
  stats.comm_seconds = ledger_after.comm_seconds - ledger_before.comm_seconds;
  stats.bytes_sent = ledger_after.bytes_sent - ledger_before.bytes_sent;
  publish_gst_obs(rank, stats);
  return result;
}

}  // namespace

}  // namespace pgasm::gst
