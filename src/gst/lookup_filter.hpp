// Baseline pair filter: the fixed-length lookup table (paper Section 2).
//
// "The most frequently used filter is to generate pairs that have one or
// more exact matches of a specified length, say w. Such pairs are easily
// identified using a lookup table constructed for all w-length substrings
// within each fragment. A downside to this approach is that a long exact
// match of length l reveals itself as (l - w + 1) matches of length w" —
// and w must stay small (10-11) because the table is exponential in w.
//
// This is the baseline the paper's maximal-match generator is designed to
// beat: it emits far more duplicate pairs, cannot order pairs by match
// quality, and needs the table in memory. We implement it faithfully so
// bench/baseline_lookup_filter can quantify the difference.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "gst/pair_generator.hpp"
#include "seq/fragment_store.hpp"
#include "util/deterministic.hpp"

namespace pgasm::gst {

struct LookupFilterParams {
  std::uint32_t w = 11;  ///< table word length (4^w entries)
  bool doubled_input = false;
  /// Emit each fragment pair at most once per shared w-mer *word* (still
  /// many times per long match — once per starting position). False emits
  /// every occurrence pair, exactly like the classic filter.
  bool dedup_per_word = false;
};

struct LookupFilterStats {
  std::uint64_t table_entries = 0;   ///< 4^w slots
  std::uint64_t table_bytes = 0;     ///< slots + position lists
  std::uint64_t positions = 0;       ///< indexed w-mer occurrences
  std::uint64_t pairs_emitted = 0;
  /// The most duplicate-heavy words once the stream is exhausted:
  /// (word, pairs emitted), by pairs descending then word ascending.
  /// Quantifies the paper's duplicate-pair complaint ("a long exact match
  /// of length l reveals itself as (l - w + 1) matches of length w") per
  /// offending word, so bench/baseline_lookup_filter can report where the
  /// volume comes from.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top_words;
};

/// Streams candidate pairs from a w-mer lookup table. Pairs carry the
/// shared word's positions as the anchor and w as the "match length"
/// (the filter cannot know the true maximal match length — that is the
/// point of the comparison).
class LookupFilter {
 public:
  LookupFilter(const seq::FragmentStore& store,
               const LookupFilterParams& params);

  bool next(PromisingPair& out);
  bool done() const noexcept;

  const LookupFilterStats& stats() const noexcept { return stats_; }

 private:
  struct Occurrence {
    std::uint32_t seq;
    std::uint32_t pos;
  };

  bool emit(const Occurrence& a, const Occurrence& b, PromisingPair& out);
  void finalize_stats();

  static constexpr std::size_t kTopWords = 8;

  const seq::FragmentStore* store_;
  LookupFilterParams params_;
  LookupFilterStats stats_;
  // Bucketed occurrences: all positions of each word, grouped.
  std::vector<Occurrence> occurrences_;
  std::vector<std::uint64_t> bucket_begin_;  // per distinct word + sentinel
  std::vector<std::uint64_t> bucket_word_;   // word value per bucket
  // Iteration state.
  std::size_t bucket_ = 0;
  std::size_t i_ = 0, j_ = 1;
  bool fresh_bucket_ = true;
  bool finalized_ = false;
  std::unordered_set<std::uint64_t> seen_in_bucket_;  // dedup_per_word
  std::unordered_map<std::uint64_t, std::uint64_t> pairs_by_word_;
};

// Inline so the canonicalized iteration lives next to the container it
// snapshots: pairs_by_word_ iterates in hash-bucket order, and the
// report's order must not inherit that (pgasm-determcheck W016 guards
// this site — see DESIGN.md §16).
inline void LookupFilter::finalize_stats() {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& [word, pairs] : util::sorted_items(pairs_by_word_)) {
    stats_.top_words.emplace_back(word, pairs);
  }
  // Key-ascending in, stable sort by count: ties break toward the smaller
  // word, deterministically.
  std::stable_sort(stats_.top_words.begin(), stats_.top_words.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (stats_.top_words.size() > kTopWords) {
    stats_.top_words.resize(kTopWords);
  }
}

}  // namespace pgasm::gst
