#include "gst/suffix.hpp"

#include "util/contract.hpp"

namespace pgasm::gst {

std::vector<Suffix> enumerate_suffixes_range(const seq::FragmentStore& store,
                                             std::uint32_t seq_begin,
                                             std::uint32_t seq_end,
                                             std::uint32_t min_len) {
  std::vector<Suffix> out;
  for (std::uint32_t s = seq_begin; s < seq_end; ++s) {
    const auto text = store.seq(s);
    const auto n = static_cast<std::uint32_t>(text.size());
    // Walk runs of unmasked characters; each position in a run is a suffix
    // whose effective length reaches the end of the run.
    std::uint32_t run_end = 0;
    for (std::uint32_t pos = 0; pos < n; ++pos) {
      if (!seq::is_base(text[pos])) continue;
      if (pos >= run_end) {
        run_end = pos;
        while (run_end < n && seq::is_base(text[run_end])) ++run_end;
      }
      const std::uint32_t len = run_end - pos;
      if (len < min_len) {
        pos = run_end;  // skip the tail of this run (monotonically shorter)
        continue;
      }
      out.push_back(Suffix{s, pos, len, class_of(text, pos)});
    }
  }
  return out;
}

std::vector<Suffix> enumerate_suffixes(const seq::FragmentStore& store,
                                       std::uint32_t min_len) {
  return enumerate_suffixes_range(store, 0,
                                  static_cast<std::uint32_t>(store.size()),
                                  min_len);
}

std::uint32_t bucket_of(const seq::FragmentStore& store, const Suffix& s,
                        std::uint32_t w) noexcept {
  const auto text = store.seq(s.seq);
  // Caller contract: the suffix is at least w unmasked characters long
  // (enumerate_suffixes filters by min_len >= w), so the window below stays
  // inside the fragment and every code is a 2-bit base.
  PGASM_DCHECK(s.pos + w <= text.size(), "bucket window past fragment end");
  PGASM_DCHECK(w <= 16, "bucket prefix wider than 16 bases overflows u32");
  std::uint32_t b = 0;
  for (std::uint32_t i = 0; i < w; ++i) {
    PGASM_DCHECK(seq::is_base(text[s.pos + i]),
                 "bucket window crosses a masked character");
    b = (b << 2) | text[s.pos + i];
  }
  return b;
}

}  // namespace pgasm::gst
