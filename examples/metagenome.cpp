// Environmental-sample clustering (paper Section 9.2, the Sargasso Sea
// analogue): reads from many bacterial genomes with power-law abundances
// are clustered collectively. Clustering must separate species — each
// cluster should be species-pure even though no assembler could easily
// deconvolve the mixture — and the cluster count explodes relative to a
// single-genome project.
//
//   ./metagenome --species 40 --reads 3000 --ranks 4
#include <cstdio>
#include <map>
#include <set>

#include "pipeline/pipeline.hpp"
#include "sim/community.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint32_t species =
      static_cast<std::uint32_t>(flags.get_u64("species", 30));
  const std::size_t n_reads = flags.get_u64("reads", 2000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 304);
  flags.finish();

  sim::CommunityParams cp;
  cp.num_species = species;
  cp.genome_len_min = 10'000;
  cp.genome_len_max = 40'000;
  cp.seed = seed;
  const auto community = sim::simulate_community(cp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 600;
  rp.len_spread = 120;
  sim::sample_community(rs, community, n_reads, rp, rng);
  std::fprintf(stderr, "%zu reads from %u species (%s total)\n",
               rs.store.size(), species,
               util::fmt_bytes(rs.store.total_length()).c_str());

  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.run_assembly = false;  // the paper clusters; assembly is future work
  params.cluster.psi = 20;
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  const auto result =
      pipeline::run_pipeline(rs.store, sim::vector_library(), params);

  const auto& cs = result.cluster_summary;
  const auto& st = result.cluster_stats;
  std::printf("\n== Environmental sample clustering ==\n");
  std::printf("clusters: %zu non-singleton + %zu singletons\n",
              cs.num_clusters, cs.num_singletons);
  std::printf("largest cluster: %u reads (%.2f%%)\n", cs.max_cluster_size,
              100 * cs.max_cluster_fraction);
  std::printf("pairs: %s generated, %s aligned, %s saved\n",
              util::fmt_count(st.pairs_generated).c_str(),
              util::fmt_count(st.pairs_aligned).c_str(),
              util::fmt_percent(st.savings_fraction()).c_str());

  // Species purity: clusters must not mix genomes.
  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  std::size_t evaluated = 0, pure = 0;
  std::map<std::uint32_t, std::set<std::size_t>> species_clusters;
  for (std::size_t ci = 0; ci < result.cluster_sets.size(); ++ci) {
    const auto& members = result.cluster_sets[ci];
    for (auto m : members)
      species_clusters[kept_truth[m].genome_id].insert(ci);
    if (members.size() < 2) continue;
    ++evaluated;
    bool ok = true;
    for (auto m : members)
      ok &= (kept_truth[m].genome_id == kept_truth[members[0]].genome_id);
    pure += ok;
  }
  std::printf("species-pure clusters: %zu / %zu (%s)\n", pure, evaluated,
              util::fmt_percent(evaluated ? double(pure) / evaluated : 0)
                  .c_str());
  std::printf("species observed in sample: %zu; species split across >3 "
              "clusters: %zu\n",
              species_clusters.size(),
              static_cast<std::size_t>(std::count_if(
                  species_clusters.begin(), species_clusters.end(),
                  [](const auto& kv) { return kv.second.size() > 3; })));
  return 0;
}
