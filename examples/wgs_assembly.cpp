// Conventional whole-genome-shotgun assembly (paper Section 9.1, the
// D. pseudoobscura reassembly): uniform ~8.8X sampling of a moderately
// repetitive genome, statistical repeat masking from the reads themselves,
// parallel clustering, per-cluster assembly, and ground-truth cluster
// validation (the paper's BLAST-vs-published-assembly check, done directly
// against simulator coordinates here).
//
//   ./wgs_assembly --genome 200000 --coverage 8.8 --ranks 4
#include <algorithm>
#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t genome_len = flags.get_u64("genome", 150'000);
  const double coverage = flags.get_double("coverage", 8.8);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 205);
  const bool mask = flags.get_bool("mask", true);
  const std::string obs_out = flags.get_string("obs-out", "");
  flags.finish();

  const auto genome =
      sim::simulate_genome(sim::shotgun_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, coverage, rp, rng);
  std::fprintf(stderr, "%zu WGS reads (%.1fX of %llu bp, %.0f%% repeats)\n",
               rs.store.size(), coverage,
               static_cast<unsigned long long>(genome.length()),
               100 * genome.repeat_fraction());

  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.pre.mask_repeats = mask;
  // Shallow statistical sample (~1X-equivalent), as in the paper's 0.1X.
  params.pre.repeat.sample_fraction = std::min(1.0, 1.0 / coverage);
  params.cluster.psi = 20;
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  params.obs_dir = obs_out;
  const auto result =
      pipeline::run_pipeline(rs.store, sim::vector_library(), params);

  const auto& cs = result.cluster_summary;
  const auto& st = result.cluster_stats;
  const auto& as = result.assembly_summary;
  std::printf("\n== WGS cluster-then-assemble (masking %s) ==\n",
              mask ? "on" : "OFF (ablation)");
  std::printf("fragments after preprocessing: %s\n",
              util::fmt_count(cs.total_fragments).c_str());
  std::printf("clusters: %zu (+%zu singletons); largest %.2f%% of input\n",
              cs.num_clusters, cs.num_singletons,
              100 * cs.max_cluster_fraction);
  std::printf("pairs: %s generated / %s aligned / %s accepted (%s saved)\n",
              util::fmt_count(st.pairs_generated).c_str(),
              util::fmt_count(st.pairs_aligned).c_str(),
              util::fmt_count(st.pairs_accepted).c_str(),
              util::fmt_percent(st.savings_fraction()).c_str());
  std::printf("contigs: %zu, N50 %s bp\n", as.total_contigs,
              util::fmt_count(as.n50).c_str());

  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  const auto purity =
      pipeline::evaluate_purity(result.cluster_sets, kept_truth);
  std::printf("cluster purity vs ground truth: %s (paper: 98.7%%)\n",
              util::fmt_percent(purity.purity).c_str());
  return 0;
}
