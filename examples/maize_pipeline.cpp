// Maize-style gene-enriched assembly (paper Section 8).
//
// Simulates a repeat-rich, gene-poor genome (the paper's maize: 65-80%
// repeats, 10-15% genes) sampled with the four strategies of Table 2 —
// methyl-filtration (MF), High-C0t (HC), BAC-derived and WGS — then runs
// preprocessing, parallel clustering, and per-cluster assembly, reporting
// the same statistics the paper reports:
//   * Table 2: fragments/bases by type before and after preprocessing,
//   * Section 8: cluster counts, singletons, largest cluster, avg
//     fragments/cluster, contigs/cluster,
//   * ground-truth purity (the simulator's analogue of Section 8's
//     validation against finished maize genes).
//
//   ./maize_pipeline --genome 400000 --ranks 4
#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t genome_len = flags.get_u64("genome", 300'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 2006);
  const double wgs_cov = flags.get_double("wgs-coverage", 1.0);
  const std::string obs_out = flags.get_string("obs-out", "");
  flags.finish();

  // --- Simulate the maize-like pilot data set -----------------------------
  const auto genome = sim::simulate_genome(sim::maize_like(genome_len, seed));
  std::fprintf(stderr,
               "genome: %llu bp, %.0f%% repeats, %.0f%% genes (%zu islands)\n",
               static_cast<unsigned long long>(genome.length()),
               100 * genome.repeat_fraction(), 100 * genome.gene_fraction(),
               genome.gene_islands.size());

  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 650;
  rp.len_spread = 150;
  // The pilot projects' mixture (paper Table 2): MF + HC gene-enriched,
  // BAC-derived, and random WGS.
  const std::size_t enriched_n = genome_len / 900;
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.90, rp, rng,
                            seq::FragType::kMF);
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.85, rp, rng,
                            seq::FragType::kHC);
  sim::sample_bac(rs, genome, 3, static_cast<std::uint32_t>(genome_len / 15),
                  0.6, rp, rng);
  sim::sample_wgs(rs, genome, wgs_cov, rp, rng);
  std::fprintf(stderr, "sampled %zu fragments, %s\n", rs.store.size(),
               util::fmt_bytes(rs.store.total_length()).c_str());

  // --- Run the full pipeline ----------------------------------------------
  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.pre.repeat.sample_fraction = 1.0;  // scaled-down project: use all WGS
  params.cluster.psi = 20;
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  params.assembly.overlap.min_identity = 0.96;  // CAP3-like stringency
  params.obs_dir = obs_out;
  const auto result =
      pipeline::run_pipeline(rs.store, sim::vector_library(), params);

  // --- Table 2 style report ------------------------------------------------
  std::printf("\n== Preprocessing by fragment type (cf. paper Table 2) ==\n");
  util::Table t2({"type", "frags before", "Mbp before", "frags after",
                  "Mbp after", "survival"});
  for (const auto& [type, ts] : result.pre.stats.by_type) {
    t2.add_row({seq::frag_type_name(type), util::fmt_count(ts.fragments_before),
                util::fmt_double(ts.bases_before / 1e6, 3),
                util::fmt_count(ts.fragments_after),
                util::fmt_double(ts.bases_after / 1e6, 3),
                util::fmt_percent(
                    ts.fragments_before
                        ? static_cast<double>(ts.fragments_after) /
                              static_cast<double>(ts.fragments_before)
                        : 0.0)});
  }
  t2.print();

  // --- Clustering report (cf. paper Section 8) -----------------------------
  const auto& cs = result.cluster_summary;
  const auto& st = result.cluster_stats;
  std::printf("\n== Clustering (%d ranks) ==\n", ranks);
  std::printf("fragments clustered:      %s\n",
              util::fmt_count(cs.total_fragments).c_str());
  std::printf("non-singleton clusters:   %s\n",
              util::fmt_count(cs.num_clusters).c_str());
  std::printf("singletons:               %s\n",
              util::fmt_count(cs.num_singletons).c_str());
  std::printf("avg fragments / cluster:  %.2f\n", cs.avg_fragments_per_cluster);
  std::printf("largest cluster:          %s (%.2f%% of input)\n",
              util::fmt_count(cs.max_cluster_size).c_str(),
              100 * cs.max_cluster_fraction);
  std::printf("promising pairs:          %s generated, %s aligned, %s accepted\n",
              util::fmt_count(st.pairs_generated).c_str(),
              util::fmt_count(st.pairs_aligned).c_str(),
              util::fmt_count(st.pairs_accepted).c_str());
  std::printf("alignments saved:         %s\n",
              util::fmt_percent(st.savings_fraction()).c_str());
  if (ranks >= 2) {
    std::printf("modeled time:             GST %.3f s + clustering %.3f s\n",
                st.gst_modeled_seconds, st.cluster_modeled_seconds);
    std::printf("master availability:      %s\n",
                util::fmt_percent(st.master_availability).c_str());
  }

  // --- Assembly report ------------------------------------------------------
  const auto& as = result.assembly_summary;
  std::printf("\n== Per-cluster assembly ==\n");
  std::printf("clusters assembled:       %zu\n", as.clusters_assembled);
  std::printf("contigs:                  %zu (%.2f per cluster)\n",
              as.total_contigs, as.contigs_per_cluster);
  std::printf("consensus:                %s, N50 %s bp\n",
              util::fmt_bytes(as.consensus_bases).c_str(),
              util::fmt_count(as.n50).c_str());

  // --- Ground-truth validation ----------------------------------------------
  std::vector<sim::ReadTruth> kept_truth;
  kept_truth.reserve(result.pre.kept_ids.size());
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  const auto purity =
      pipeline::evaluate_purity(result.cluster_sets, kept_truth);
  std::printf("\n== Validation against simulator ground truth ==\n");
  std::printf("clusters mapping to one benchmark region: %s (paper: 98.7%%)\n",
              util::fmt_percent(purity.purity).c_str());
  std::printf("benchmark islands: %zu, avg clusters per island: %.2f\n",
              purity.islands, purity.avg_clusters_per_island);
  return 0;
}
