// Quickstart: the smallest end-to-end use of the public API.
//
//   ./quickstart                       # simulate a toy genome and assemble
//   ./quickstart --in reads.fa         # assemble your own FASTA
//   ./quickstart --out contigs.fa      # write contigs to a file
//   ./quickstart --ranks 4             # parallel clustering on 4 ranks
//   ./quickstart --ranks 4 --transport proc   # ranks as real OS processes
//   ./quickstart --obs-out obs/        # write metrics + Chrome trace there
//   ./quickstart --trace-cap 65536     # per-rank tracer ring capacity
//
// Pipeline: reads -> preprocess (trim/screen/mask) -> cluster (transitive
// suffix-prefix overlaps via GST promising pairs) -> per-cluster greedy OLC
// assembly -> contigs.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "pipeline/pipeline.hpp"
#include "seq/fasta.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string in_path = flags.get_string("in", "");
  const std::string out_path = flags.get_string("out", "");
  const int ranks = static_cast<int>(flags.get_i64("ranks", 0));
  // vmpi backend: "thread" (default) runs ranks as threads; "proc" forks a
  // real OS process per rank, talking over shared-memory rings. The contigs
  // are identical either way; proc exists to make failures real (an
  // injected crash is an actual SIGKILL).
  const std::string transport = flags.get_string("transport", "");
  const std::uint64_t seed = flags.get_u64("seed", 1);
  const std::string obs_out = flags.get_string("obs-out", "");
  // Per-rank tracer ring capacity. Size it to hold the whole run when the
  // obs output feeds perf_diff / stitch-coverage checks (overflow marks the
  // analysis a lower bound); 0 keeps the library default.
  const std::uint64_t trace_cap = flags.get_u64("trace-cap", 0);
  flags.finish();

  // 1. Get reads: from a FASTA file, or a simulated 30 kb genome at 6X.
  seq::FragmentStore reads;
  if (!in_path.empty()) {
    seq::read_fasta_file(in_path, reads);
    std::fprintf(stderr, "read %zu fragments (%s) from %s\n", reads.size(),
                 util::fmt_bytes(reads.total_length()).c_str(),
                 in_path.c_str());
  } else {
    const auto genome = sim::simulate_genome(sim::shotgun_like(30'000, seed));
    util::Prng rng(seed + 1);
    sim::ReadSet rs;
    sim::ReadParams rp;
    rp.len_mean = 500;
    rp.len_spread = 100;
    sim::sample_wgs(rs, genome, 6.0, rp, rng);
    reads = std::move(rs.store);
    std::fprintf(stderr,
                 "simulated %zu reads (%.1fX of a %llu bp genome)\n",
                 reads.size(), 6.0,
                 static_cast<unsigned long long>(genome.length()));
  }

  // 2. Run the cluster-then-assemble pipeline.
  pipeline::PipelineParams params;
  params.ranks = ranks;           // 0 = serial clustering
  params.cluster.transport = transport;
  params.cluster.psi = 20;        // minimum maximal-match for a pair
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  params.obs_dir = obs_out;       // "" = observability off
  params.trace_capacity = static_cast<std::size_t>(trace_cap);
  const auto result =
      pipeline::run_pipeline(reads, sim::vector_library(), params);
  if (!obs_out.empty()) {
    std::fprintf(stderr,
                 "wrote run observability to %s/ (summary.txt, "
                 "metrics.jsonl, trace.json, attribution.json)\n",
                 obs_out.c_str());
  }

  // 3. Report.
  const auto& cs = result.cluster_summary;
  const auto& as = result.assembly_summary;
  std::fprintf(stderr,
               "clusters: %zu (+%zu singletons), largest %u fragments\n",
               cs.num_clusters, cs.num_singletons, cs.max_cluster_size);
  std::fprintf(stderr,
               "pairs: %llu generated, %llu aligned (%.1f%% saved), "
               "%llu accepted\n",
               static_cast<unsigned long long>(result.cluster_stats.pairs_generated),
               static_cast<unsigned long long>(result.cluster_stats.pairs_aligned),
               100.0 * result.cluster_stats.savings_fraction(),
               static_cast<unsigned long long>(result.cluster_stats.pairs_accepted));
  std::fprintf(stderr, "contigs: %zu, N50 %llu bp, %s consensus\n",
               as.total_contigs, static_cast<unsigned long long>(as.n50),
               util::fmt_bytes(as.consensus_bases).c_str());

  // 4. Emit contigs as FASTA (stdout by default).
  seq::FragmentStore contigs;
  std::size_t idx = 0;
  for (const auto& assembly : result.assemblies) {
    for (const auto& contig : assembly.contigs) {
      if (contig.is_singleton()) continue;
      contigs.add(contig.consensus, seq::FragType::kUnknown,
                  "contig" + std::to_string(idx++));
    }
  }
  if (out_path.empty()) {
    seq::write_fasta(std::cout, contigs);
  } else {
    seq::write_fasta_file(out_path, contigs);
    std::fprintf(stderr, "wrote %zu contigs to %s\n", contigs.size(),
                 out_path.c_str());
  }
  return 0;
}
