// Scaffolding demo: clone mates bridge the sequencing gaps that split the
// assembly into contigs (paper Section 2: contigs are later ordered and
// oriented along the chromosomes by "scaffolding"; Section 1: mate pairs
// come from both ends of ~5000 bp sub-clones of approximately known
// length).
//
// Simulates a gappy genome, assembles WGS + paired reads through the full
// cluster-then-assemble pipeline, then chains the contigs into scaffolds
// with the mate links and reports the N50 improvement.
//
//   ./scaffolding --genome 60000 --insert 4000 --clones 400 --ranks 4
#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t genome_len = flags.get_u64("genome", 50'000);
  const std::uint32_t insert =
      static_cast<std::uint32_t>(flags.get_u64("insert", 4'000));
  const std::size_t clones = flags.get_u64("clones", 300);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 0));
  const std::uint64_t seed = flags.get_u64("seed", 400);
  flags.finish();

  auto gp = sim::shotgun_like(genome_len, seed);
  gp.unclonable_fraction = 0.05;  // plenty of gaps to bridge
  const auto genome = sim::simulate_genome(gp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  std::vector<sim::MatePair> mates;
  sim::ReadParams rp;
  rp.len_mean = 450;
  rp.len_spread = 100;
  sim::sample_wgs(rs, genome, 6.0, rp, rng);
  sim::sample_mate_pairs(rs, mates, genome, clones, insert, insert / 10, rp,
                         rng);
  std::fprintf(stderr,
               "%zu reads (%zu mate pairs, insert ~%u bp) over a %llu bp "
               "genome with %zu unclonable gaps\n",
               rs.store.size(), mates.size(), insert,
               static_cast<unsigned long long>(genome.length()),
               genome.unclonable.size());

  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.pre.repeat.sample_fraction = 0.15;
  params.cluster.psi = 20;
  params.cluster.overlap.min_overlap = 40;
  params.cluster.overlap.min_identity = 0.93;
  const auto result =
      pipeline::run_pipeline(rs.store, sim::vector_library(), params);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> raw_links;
  std::vector<std::uint32_t> inserts;
  for (const auto& m : mates) {
    raw_links.push_back({m.read_a, m.read_b});
    inserts.push_back(m.insert_len);
  }
  const auto scaffolds = pipeline::build_scaffolds(
      result, raw_links, inserts, rs.store.size());

  std::printf("\n== Scaffolding ==\n");
  std::printf("contigs: %zu (N50 %s bp)\n", scaffolds.contigs.size(),
              util::fmt_count(scaffolds.contig_n50).c_str());
  std::printf("scaffolds: %zu, of which %zu join >= 2 contigs\n",
              scaffolds.result.scaffolds.size(),
              scaffolds.result.num_multi());
  std::printf("scaffold span N50: %s bp (%.2fx the contig N50)\n",
              util::fmt_count(scaffolds.scaffold_span_n50).c_str(),
              scaffolds.contig_n50
                  ? static_cast<double>(scaffolds.scaffold_span_n50) /
                        static_cast<double>(scaffolds.contig_n50)
                  : 0.0);
  const auto& st = scaffolds.result.stats;
  std::printf("mate links: %s total, %s intra-contig, %s bundled into "
              "edges, %s dropped in preprocessing\n",
              util::fmt_count(st.links_total).c_str(),
              util::fmt_count(st.links_intra_contig).c_str(),
              util::fmt_count(st.links_bundled).c_str(),
              util::fmt_count(scaffolds.mates_dropped).c_str());

  // Print the largest scaffold's layout.
  const olc::Scaffold* best = nullptr;
  for (const auto& sc : scaffolds.result.scaffolds) {
    if (!best || sc.span(scaffolds.contigs) > best->span(scaffolds.contigs))
      best = &sc;
  }
  if (best && best->entries.size() > 1) {
    std::printf("\nlargest scaffold (%s bp span):\n",
                util::fmt_count(best->span(scaffolds.contigs)).c_str());
    for (const auto& e : best->entries) {
      if (e.gap_before > 0)
        std::printf("  -- gap ~%lld bp --\n",
                    static_cast<long long>(e.gap_before));
      std::printf("  contig %u (%s bp)%s\n", e.contig,
                  util::fmt_count(scaffolds.contigs[e.contig].length()).c_str(),
                  e.flip ? " (reversed)" : "");
    }
  }
  return 0;
}
