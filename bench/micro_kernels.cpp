// Micro-benchmarks of the framework's kernels (google-benchmark):
// alignment DP variants, GST construction, promising-pair generation,
// union-find, reverse complement, k-mer extraction, vmpi messaging, and the
// obs tracer/registry hot paths. Results also land in
// BENCH_micro_kernels.json (google-benchmark's JSON schema).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "align/linear_space.hpp"
#include "align/overlap.hpp"
#include "align/pairwise.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "preprocess/repeat_masker.hpp"
#include "seq/fragment_store.hpp"
#include "util/prng.hpp"
#include "util/union_find.hpp"
#include "vmpi/runtime.hpp"

namespace {

using namespace pgasm;

std::vector<seq::Code> random_dna(util::Prng& rng, std::size_t len) {
  std::vector<seq::Code> out(len);
  for (auto& c : out) c = static_cast<seq::Code>(rng.below(4));
  return out;
}

/// Pair of overlapping reads with ~1.5% errors in the shared region.
std::pair<std::vector<seq::Code>, std::vector<seq::Code>> overlap_pair(
    util::Prng& rng, std::size_t len, std::size_t ovl) {
  auto a = random_dna(rng, len);
  std::vector<seq::Code> b(a.end() - ovl, a.end());
  auto tail = random_dna(rng, len - ovl);
  b.insert(b.end(), tail.begin(), tail.end());
  for (std::size_t i = 0; i < ovl; ++i) {
    if (rng.chance(0.015))
      b[i] = static_cast<seq::Code>((b[i] + 1 + rng.below(3)) % 4);
  }
  return {std::move(a), std::move(b)};
}

void BM_GlobalAlign(benchmark::State& state) {
  util::Prng rng(1);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto a = random_dna(rng, len);
  const auto b = random_dna(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::global_align(a, b, align::Scoring{}));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GlobalAlign)->Arg(200)->Arg(400)->Arg(800)->Complexity();

void BM_AffineAlign(benchmark::State& state) {
  util::Prng rng(2);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto a = random_dna(rng, len);
  const auto b = random_dna(rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::global_affine_align(a, b, align::Scoring{}));
  }
}
BENCHMARK(BM_AffineAlign)->Arg(200)->Arg(400);

void BM_OverlapAlignFull(benchmark::State& state) {
  util::Prng rng(3);
  const auto [a, b] = overlap_pair(rng, 600, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::overlap_align(a, b, align::Scoring{}));
  }
}
BENCHMARK(BM_OverlapAlignFull);

void BM_BandedOverlapAlign(benchmark::State& state) {
  util::Prng rng(3);
  const auto [a, b] = overlap_pair(rng, 600, 200);
  const std::uint32_t band = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::banded_overlap_align(a, b, align::Scoring{}, -400, band));
  }
}
BENCHMARK(BM_BandedOverlapAlign)->Arg(4)->Arg(10)->Arg(24);

void BM_SuffixTreeBuild(benchmark::State& state) {
  util::Prng rng(4);
  seq::FragmentStore store;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) store.add(random_dna(rng, 600));
  for (auto _ : state) {
    gst::SuffixTree tree(store, gst::GstParams{.min_match = 20});
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetBytesProcessed(state.iterations() * store.total_length());
}
BENCHMARK(BM_SuffixTreeBuild)->Arg(100)->Arg(400)->Arg(1600);

void BM_PairGeneration(benchmark::State& state) {
  // Reads sampled from one genome => dense overlaps => many pairs.
  util::Prng rng(5);
  const auto genome = random_dna(rng, 20'000);
  seq::FragmentStore store;
  for (int i = 0; i < 400; ++i) {
    const std::size_t start = rng.below(genome.size() - 600);
    store.add(std::vector<seq::Code>(genome.begin() + start,
                                     genome.begin() + start + 600));
  }
  gst::SuffixTree tree(store, gst::GstParams{.min_match = 20});
  for (auto _ : state) {
    gst::PairGenerator gen(tree, {.dup_elim = true});
    gst::PromisingPair p;
    std::uint64_t count = 0;
    while (gen.next(p)) ++count;
    benchmark::DoNotOptimize(count);
    state.counters["pairs"] = static_cast<double>(count);
  }
}
BENCHMARK(BM_PairGeneration);

void BM_MyersEditDistance(benchmark::State& state) {
  util::Prng rng(12);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto a = random_dna(rng, len);
  auto b = a;
  for (auto& c : b) {
    if (rng.chance(0.05)) c = static_cast<seq::Code>((c + 1) % 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::myers_edit_distance(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MyersEditDistance)->Arg(200)->Arg(800)->Arg(3200);

void BM_MyersBounded(benchmark::State& state) {
  util::Prng rng(13);
  const auto a = random_dna(rng, 800);
  const auto b = random_dna(rng, 800);  // unrelated: bound exits early
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::myers_edit_distance_bounded(a, b, 40));
  }
}
BENCHMARK(BM_MyersBounded);

void BM_HirschbergAlign(benchmark::State& state) {
  util::Prng rng(14);
  const auto len = static_cast<std::size_t>(state.range(0));
  const auto a = random_dna(rng, len);
  auto b = a;
  for (auto& c : b) {
    if (rng.chance(0.05)) c = static_cast<seq::Code>((c + 1) % 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::hirschberg_align(a, b, align::Scoring{}));
  }
}
BENCHMARK(BM_HirschbergAlign)->Arg(400)->Arg(1600);

void BM_UnionFind(benchmark::State& state) {
  util::Prng rng(6);
  const std::size_t n = 1 << 16;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges(n);
  for (auto& e : edges) {
    e = {static_cast<std::uint32_t>(rng.below(n)),
         static_cast<std::uint32_t>(rng.below(n))};
  }
  for (auto _ : state) {
    util::UnionFind uf(n);
    for (const auto& [a, b] : edges) uf.unite(a, b);
    benchmark::DoNotOptimize(uf.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFind);

void BM_ReverseComplement(benchmark::State& state) {
  util::Prng rng(7);
  const auto s = random_dna(rng, 1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::reverse_complement(s));
  }
  state.SetBytesProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_ReverseComplement);

void BM_CanonicalKmers(benchmark::State& state) {
  util::Prng rng(8);
  const auto s = random_dna(rng, 1 << 16);
  for (auto _ : state) {
    std::uint64_t acc = 0, key = 0;
    for (std::uint32_t p = 0; p + 16 <= s.size(); ++p) {
      if (preprocess::RepeatMasker::canonical_kmer(s, p, 16, &key)) acc ^= key;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() * s.size());
}
BENCHMARK(BM_CanonicalKmers);

void BM_VmpiPingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    vmpi::Runtime rt(2);
    rt.run([&](vmpi::Comm& c) {
      std::vector<std::uint8_t> buf(bytes, 1);
      for (int i = 0; i < 50; ++i) {
        if (c.rank() == 0) {
          c.send_vector(1, 1, buf);
          buf = c.recv_vector<std::uint8_t>(1, 2);
        } else {
          buf = c.recv_vector<std::uint8_t>(0, 1);
          c.send_vector(0, 2, buf);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 100 * bytes);
}
BENCHMARK(BM_VmpiPingPong)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Alltoallv(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    vmpi::Runtime rt(ranks);
    rt.run([&](vmpi::Comm& c) {
      std::vector<std::vector<std::uint32_t>> out(c.size());
      for (int d = 0; d < c.size(); ++d) out[d].assign(1024, d);
      benchmark::DoNotOptimize(c.staged_alltoallv(out));
    });
  }
}
BENCHMARK(BM_Alltoallv)->Arg(4)->Arg(8);

// The acceptance bar for instrumenting hot paths: a span on a disabled
// tracer must cost a single relaxed load + branch (sub-nanosecond), so the
// vmpi/cluster/gst layers can stay instrumented unconditionally.
void BM_TracerDisabledSpan(benchmark::State& state) {
  obs::tracer().set_enabled(false);
  for (auto _ : state) {
    obs::Span sp = obs::span(0, "bench", "obs");
    benchmark::DoNotOptimize(sp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerDisabledSpan);

void BM_TracerEnabledSpan(benchmark::State& state) {
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  for (auto _ : state) {
    obs::Span sp = obs::span(0, "bench", "obs");
    benchmark::DoNotOptimize(sp);
  }
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerEnabledSpan);

void BM_RegistryCounterInc(benchmark::State& state) {
  obs::registry().clear();
  auto& c = obs::registry().counter("bench.counter", 0, "");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
  obs::registry().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryCounterInc);

void BM_RegistryHistogramObserve(benchmark::State& state) {
  obs::registry().clear();
  auto& h = obs::registry().histogram("bench.histogram", 0, "");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = v * 3 + 1;  // walk the buckets
  }
  benchmark::DoNotOptimize(h.count());
  obs::registry().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryHistogramObserve);

}  // namespace

// BENCHMARK_MAIN(), except runs default to a JSON sidecar
// (BENCH_micro_kernels.json) next to the console table; an explicit
// --benchmark_out on the command line takes precedence.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::cerr << "wrote BENCH_micro_kernels.json\n";
  benchmark::Shutdown();
  return 0;
}
