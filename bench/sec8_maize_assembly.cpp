// Reproduces paper Section 8's end-to-end maize numbers: cluster counts,
// singleton counts, average fragments per (non-singleton) cluster, largest
// cluster as a fraction of the input, contigs per cluster from the serial
// assembler, and validation against ground truth.
//
// Paper: 149,548 clusters + 244,727 singletons; 9.00 avg fragments per
// cluster; largest cluster 5.37% of input; 1.1 contigs per cluster under a
// higher-stringency CAP3 assembly; <1/10,000 consensus error vs finished
// genes.
//
//   ./sec8_maize_assembly --bp 1200000 --ranks 4
#include "bench_util.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 1'000'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 88);
  flags.finish();

  bench::print_header(
      "Section 8 — maize cluster-then-assemble end to end",
      "paper: 1.6M fragments, 1.25 Gbp, 102 min on 1024 BG/L nodes + CAP3; "
      "here: maize-style mixture scaled ~1000x");

  const auto rs = bench::maize_dataset(bp, seed);
  pipeline::PipelineParams params;
  params.ranks = ranks;
  params.pre.repeat.sample_fraction = 1.0;
  params.cluster = bench::bench_cluster_params();
  params.assembly.overlap.min_identity = 0.96;  // higher stringency (CAP3)
  const auto result =
      pipeline::run_pipeline(rs.store, sim::vector_library(), params);

  const auto& cs = result.cluster_summary;
  const auto& st = result.cluster_stats;
  const auto& as = result.assembly_summary;

  util::Table t({"metric", "this run", "paper (full scale)"});
  t.add_row({"fragments clustered", util::fmt_count(cs.total_fragments),
             "1,607,364"});
  t.add_row({"non-singleton clusters", util::fmt_count(cs.num_clusters),
             "149,548"});
  t.add_row({"singletons", util::fmt_count(cs.num_singletons), "244,727"});
  t.add_row({"avg fragments/cluster",
             util::fmt_double(cs.avg_fragments_per_cluster, 2), "9.00"});
  t.add_row({"largest cluster (% of input)",
             util::fmt_percent(cs.max_cluster_fraction, 2), "5.37%"});
  t.add_row({"contigs per cluster",
             util::fmt_double(as.contigs_per_cluster, 2), "1.1"});
  t.add_row({"pairs generated", util::fmt_count(st.pairs_generated),
             "48,400,000"});
  t.add_row({"% pairs not aligned (savings)",
             util::fmt_percent(st.savings_fraction()), "43.9%"});
  t.add_row({"GST modeled time (s)",
             util::fmt_double(st.gst_modeled_seconds, 3), "13 min wall"});
  t.add_row({"clustering modeled time (s)",
             util::fmt_double(st.cluster_modeled_seconds, 3),
             "89 min wall"});
  t.print();

  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
  const auto purity =
      pipeline::evaluate_purity(result.cluster_sets, kept_truth);
  std::printf("\ncluster purity vs ground truth: %s (paper: 98.7%% via "
              "BLAST mapping)\n",
              util::fmt_percent(purity.purity).c_str());
  // Consensus accuracy vs the source genome (paper: <1e-4 on finished
  // genes; majority-vote consensus at low coverage runs higher).
  const auto genome2 = sim::simulate_genome(sim::maize_like(bp / 5 * 2, seed));
  const auto consensus = pipeline::evaluate_consensus(
      result.cluster_sets, result.assemblies, kept_truth, {&genome2, 1});
  std::printf("consensus error rate: %.5f overall, %.5f at >=3X columns "
              "(%s columns, %zu contigs); paper: <0.0001 on finished genes\n",
              consensus.error_rate(), consensus.deep_error_rate(),
              util::fmt_count(consensus.columns).c_str(),
              consensus.contigs_evaluated);
  std::printf("assembly N50: %s bp over %s of consensus\n",
              util::fmt_count(as.n50).c_str(),
              util::fmt_bytes(as.consensus_bases).c_str());
  std::printf(
      "\nexpected shape (paper §8): thousands of small clusters + many "
      "singletons;\navg cluster size ~10; largest cluster a few %% of the "
      "input; ~1.1 contigs/cluster.\n");
  return 0;
}
