// Reproduces paper Table 1: the number of promising pairs generated,
// aligned, and accepted as a function of input size on maize-style data,
// and the fraction of generated pairs never aligned (the clustering
// heuristic's savings).
//
// Paper row (1252 Mbp): 48.4M generated, 27.2M aligned, 1.1M accepted,
// 43.9% savings; savings were 22% on other data — i.e. highly data
// dependent but always substantial, and accepted pairs are a small
// fraction of aligned. Growth in generated pairs is super-linear in N
// (repeats that survive masking).
//
//   ./table1_promising_pairs --sizes 250000,500000,1000000,1250000
#include <sstream>

#include "bench_util.hpp"
#include "core/serial_cluster.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string sizes_str =
      flags.get_string("sizes", "250000,500000,1000000,1250000");
  const std::uint64_t seed = flags.get_u64("seed", 17);
  flags.finish();

  std::vector<std::uint64_t> sizes;
  std::stringstream ss(sizes_str);
  for (std::string tok; std::getline(ss, tok, ',');) {
    sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }

  bench::print_header(
      "Table 1 — promising pairs generated / aligned / accepted vs N",
      "paper: 250-1252 Mbp maize; here: same series scaled ~1000x "
      "(maize-style mixture, preprocessed, serial clustering)");

  util::Table t({"input bp (N)", "fragments (n)", "pairs generated",
                 "pairs aligned", "pairs accepted", "% savings"});
  const auto params = bench::bench_cluster_params();
  for (const auto bp : sizes) {
    const auto rs = bench::maize_dataset(bp, seed);
    preprocess::PreprocessParams pp;
    pp.repeat.sample_fraction = 1.0;
    const auto pre =
        preprocess::preprocess(rs.store, sim::vector_library(), pp);
    const auto result = core::cluster_serial(pre.store, params);
    t.add_row({util::fmt_count(pre.store.total_length()),
               util::fmt_count(pre.store.size()),
               util::fmt_count(result.stats.pairs_generated),
               util::fmt_count(result.stats.pairs_aligned),
               util::fmt_count(result.stats.pairs_accepted),
               util::fmt_percent(result.stats.savings_fraction())});
  }
  t.print();
  std::printf(
      "\nexpected shape (paper Table 1): generated pairs grow super-"
      "linearly in N;\nsavings stay substantial (paper: 43.9%% on maize, "
      "22%% elsewhere); accepted << aligned.\n");
  return 0;
}
