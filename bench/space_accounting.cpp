// Reproduces the paper's Section 7.1 space accounting: the framework is
// O(N) overall — the paper's implementation used ~80 bytes per input
// character on the workers and a 4-bytes-per-fragment union-find on the
// master, which is what let 512 MB BlueGene/L nodes host >100M fragments.
//
// We measure the analogous numbers: bytes per input character for the GST
// plus pair-generator state at several input sizes (flat = linear space),
// and master memory per fragment.
//
//   ./space_accounting --sizes 125000,250000,500000,1000000
#include <sstream>

#include "bench_util.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string sizes_str =
      flags.get_string("sizes", "125000,250000,500000,1000000");
  const std::uint64_t seed = flags.get_u64("seed", 21);
  flags.finish();

  std::vector<std::uint64_t> sizes;
  std::stringstream ss(sizes_str);
  for (std::string tok; std::getline(ss, tok, ',');) {
    sizes.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  }

  bench::print_header(
      "Section 7.1 — linear-space accounting",
      "paper: ~80 B per input character worker-side, O(n) master; "
      "flat bytes/char across sizes demonstrates O(N)");

  util::Table t({"input bp (N)", "suffixes", "tree MB", "generator peak MB",
                 "bytes/char", "master B/fragment"});
  for (const auto bp : sizes) {
    const auto rs = bench::maize_dataset(bp, seed);
    preprocess::PreprocessParams pp;
    pp.repeat.sample_fraction = 1.0;
    const auto pre =
        preprocess::preprocess(rs.store, sim::vector_library(), pp);
    const auto doubled = seq::make_doubled_store(pre.store);
    gst::SuffixTree tree(doubled, gst::GstParams{.min_match = 20});
    gst::PairGenerator gen(tree, {.dup_elim = true, .doubled_input = true});
    gst::PromisingPair p;
    std::uint64_t peak = gen.memory_bytes(), n = 0;
    while (gen.next(p)) {
      if ((++n & 0x3FF) == 0) peak = std::max(peak, gen.memory_bytes());
    }
    peak = std::max(peak, gen.memory_bytes());
    const std::uint64_t chars = doubled.total_length();
    const std::uint64_t bytes = tree.memory_bytes() + peak + chars;
    // Master: union-find = parent + size arrays (2 x 4 bytes / fragment).
    const double master_bpf = 8.0;
    t.add_row({util::fmt_count(pre.store.total_length()),
               util::fmt_count(tree.num_suffixes()),
               util::fmt_double(static_cast<double>(tree.memory_bytes()) / 1e6, 2),
               util::fmt_double(static_cast<double>(peak) / 1e6, 2),
               util::fmt_double(static_cast<double>(bytes) /
                                    static_cast<double>(chars), 1),
               util::fmt_double(master_bpf, 0)});
  }
  t.print();
  std::printf(
      "\nexpected shape (paper §7.1): bytes/char stays flat as N grows "
      "(linear space);\nthe constant is comparable to the paper's 80 "
      "B/char (leaner node records).\n");
  return 0;
}
