// Reproduces paper Section 9's validation numbers:
//   * 9.1 D. pseudoobscura WGS: 32,893 non-singleton clusters + 174,277
//     singletons; average cluster size 10.60; largest cluster 6.76% of the
//     fragments; 98.7% of clusters map to a single benchmark sequence.
//   * 9.2 Sargasso Sea: 825,696 clusters of which 129,741 non-singleton;
//     many species -> clusters never mix species.
//
//   ./sec9_validation --bp 1000000 --ranks 4
#include "bench_util.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 800'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 51);
  flags.finish();

  bench::print_header(
      "Section 9 — WGS and environmental clustering validity",
      "paper: 98.7% of fly clusters map to one benchmark region; Sargasso "
      "clusters stay species-coherent");

  // --- 9.1: Drosophila-style WGS -------------------------------------------
  {
    const auto rs = bench::wgs_dataset(bp, 8.8, seed);
    pipeline::PipelineParams params;
    params.ranks = ranks;
    params.cluster = bench::bench_cluster_params();
    params.pre.repeat.sample_fraction = 0.15;
    params.run_assembly = false;
    const auto result =
        pipeline::run_pipeline(rs.store, sim::vector_library(), params);
    std::vector<sim::ReadTruth> kept_truth;
    for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);
    const auto purity =
        pipeline::evaluate_purity(result.cluster_sets, kept_truth);

    const auto& cs = result.cluster_summary;
    util::Table t({"metric (WGS)", "this run", "paper"});
    t.add_row({"fragments", util::fmt_count(cs.total_fragments), "2,074,483"});
    t.add_row({"non-singleton clusters", util::fmt_count(cs.num_clusters),
               "32,893"});
    t.add_row({"singletons", util::fmt_count(cs.num_singletons), "174,277"});
    t.add_row({"avg fragments/cluster",
               util::fmt_double(cs.avg_fragments_per_cluster, 2), "10.60"});
    t.add_row({"largest cluster",
               util::fmt_percent(cs.max_cluster_fraction, 2), "6.76%"});
    t.add_row({"clusters mapping to one region",
               util::fmt_percent(purity.purity), "98.7%"});
    t.print();
  }

  // --- 9.2: Sargasso-style environmental sample ----------------------------
  {
    const auto rs = bench::env_dataset(bp, /*species=*/80, seed + 1);
    pipeline::PipelineParams params;
    params.ranks = ranks;
    params.cluster = bench::bench_cluster_params();
    params.pre.repeat.sample_fraction = 0.15;
    params.run_assembly = false;
    const auto result =
        pipeline::run_pipeline(rs.store, sim::vector_library(), params);
    std::vector<sim::ReadTruth> kept_truth;
    for (auto id : result.pre.kept_ids) kept_truth.push_back(rs.truth[id]);

    std::size_t evaluated = 0, pure = 0;
    for (const auto& members : result.cluster_sets) {
      if (members.size() < 2) continue;
      ++evaluated;
      bool ok = true;
      for (auto m : members)
        ok &= (kept_truth[m].genome_id == kept_truth[members[0]].genome_id);
      pure += ok;
    }
    const auto& cs = result.cluster_summary;
    util::Table t({"metric (environmental)", "this run", "paper"});
    t.add_row({"fragments", util::fmt_count(cs.total_fragments), "1,660,000"});
    t.add_row({"non-singleton clusters", util::fmt_count(cs.num_clusters),
               "129,741"});
    t.add_row({"singletons", util::fmt_count(cs.num_singletons), "695,955"});
    t.add_row({"species-pure clusters",
               util::fmt_percent(evaluated ? static_cast<double>(pure) /
                                                 static_cast<double>(evaluated)
                                           : 0.0),
               "n/a (clusters enable deconvolution)"});
    t.print();
  }
  std::printf(
      "\nexpected shape (paper §9): WGS clusters overwhelmingly map to a "
      "single\nbenchmark region; environmental clusters never mix species; "
      "the sample's\nspecies diversity multiplies the cluster count.\n");
  return 0;
}
