// Ablation of the future-work extension the paper proposes in Section 10:
// "The effectiveness of our clustering approach can be further enhanced by
// resolving inconsistent overlaps during cluster formation. By reducing the
// largest cluster size, this will increase available parallelism during the
// assembly phase."
//
// We cluster repeat-heavy unmasked WGS data with and without the
// inconsistent-overlap resolution: accepted overlaps imply relative
// placements (orientation + offset); merges whose placement contradicts the
// cluster's layout are refused. Expectation: the largest cluster shrinks
// and cluster purity improves, at a small bookkeeping cost.
//
//   ./ablation_consistency --bp 500000 --ranks 4
#include "bench_util.hpp"
#include "core/parallel_cluster.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 400'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 23);
  flags.finish();

  bench::print_header(
      "Extension ablation — resolving inconsistent overlaps (paper §10 "
      "future work)",
      "largest cluster shrinks, purity improves, parallelism for the "
      "assembly phase grows");

  // Repeat-heavy genome, masking off: the stress case where single-linkage
  // chains unrelated regions through repeats.
  const std::uint64_t genome_len =
      static_cast<std::uint64_t>(static_cast<double>(bp) / 8.8);
  sim::GenomeParams gp;
  gp.length = genome_len;
  gp.seed = seed;
  gp.gene_fraction = 0.2;
  gp.unclonable_fraction = 0.04;
  sim::RepeatFamilyParams young{.element_length = 700, .copies = 0,
                                .divergence = 0.005};
  young.copies = static_cast<std::uint32_t>(genome_len / 12 / 700);
  gp.repeat_families = {young};
  const auto genome = sim::simulate_genome(gp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, 8.8, rp, rng);

  preprocess::PreprocessParams pp;
  pp.mask_repeats = false;
  const auto pre = preprocess::preprocess(rs.store, sim::vector_library(), pp);
  std::vector<sim::ReadTruth> kept_truth;
  for (auto id : pre.kept_ids) kept_truth.push_back(rs.truth[id]);

  auto params = bench::bench_cluster_params();
  util::Table t({"mode", "clusters", "largest cluster", "merges refused",
                 "purity", "modeled (s)"});
  for (const bool resolve : {false, true}) {
    params.resolve_inconsistent = resolve;
    const auto result = core::cluster_parallel(pre.store, params, ranks);
    const auto summary = pipeline::summarize_clusters(result.clusters);
    const auto sets = result.clusters.extract_sets();
    std::vector<std::vector<std::uint32_t>> cluster_sets(sets.begin(),
                                                         sets.end());
    const auto purity = pipeline::evaluate_purity(cluster_sets, kept_truth);
    t.add_row({resolve ? "resolve inconsistent" : "single linkage",
               util::fmt_count(summary.num_clusters),
               util::fmt_percent(summary.max_cluster_fraction, 2),
               util::fmt_count(result.stats.merges_rejected_inconsistent),
               util::fmt_percent(purity.purity),
               util::fmt_double(result.stats.cluster_modeled_seconds, 4)});
  }
  t.print();
  std::printf(
      "\nexpected shape: with resolution, placements through different "
      "repeat copies\nconflict, so the giant repeat-fused cluster breaks up "
      "and purity rises.\n");
  return 0;
}
