// Ablation of the paper's central heuristic (Section 4/5): generating
// promising pairs in decreasing maximal-match-length order drives early
// cluster merges, so later pairs are skipped without alignment. Processing
// the same pairs in arbitrary (shuffled) order must yield the same final
// clustering (transitive closure) but compute more alignments.
//
// Also ablates duplicate elimination (Section 5): fragment-level generation
// emits a pair at most once per node; suffix-level generation emits every
// maximal match.
//
//   ./ablation_pair_order --bp 500000
#include "bench_util.hpp"
#include "core/serial_cluster.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 400'000);
  const std::uint64_t seed = flags.get_u64("seed", 3);
  flags.finish();

  bench::print_header(
      "Ablation — decreasing maximal-match order & duplicate elimination",
      "paper §5: ordering reduces alignments without changing the "
      "clustering; dup-elim reduces generated pairs");

  // Repeat-heavy WGS with masking off: this is where ordering matters —
  // repeat-induced pairs carry short maximal matches and mostly fail the
  // alignment test, while true overlaps carry long matches. Processing
  // long matches first merges clusters before the junk pairs arrive.
  const std::uint64_t genome_len =
      static_cast<std::uint64_t>(static_cast<double>(bp) / 8.8);
  sim::GenomeParams gp;
  gp.length = genome_len;
  gp.seed = seed;
  gp.gene_fraction = 0.2;
  gp.unclonable_fraction = 0.04;
  sim::RepeatFamilyParams old_fam{.element_length = 600, .copies = 0,
                                  .divergence = 0.05};
  old_fam.copies = static_cast<std::uint32_t>(genome_len * 30 / 100 / 600);
  gp.repeat_families = {old_fam};
  const auto genome = sim::simulate_genome(gp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, 8.8, rp, rng);
  preprocess::PreprocessParams pp;
  pp.mask_repeats = false;  // leave the repeats in: the stress case
  const auto pre = preprocess::preprocess(rs.store, sim::vector_library(), pp);
  std::printf("input: %s fragments, %s bp\n",
              util::fmt_count(pre.store.size()).c_str(),
              util::fmt_count(pre.store.total_length()).c_str());

  // --- pair processing order ----------------------------------------------
  auto params = bench::bench_cluster_params();
  util::Table t({"pair order", "pairs generated", "pairs aligned",
                 "alignments saved", "clusters", "wall (s)"});
  std::size_t clusters_ordered = 0, clusters_shuffled = 0;
  for (const bool ordered : {true, false}) {
    params.ordered = ordered;
    params.overlap.min_identity = 0.95;
    params.overlap.min_overlap = 50;
    util::WallTimer timer;
    const auto result = core::cluster_serial(pre.store, params);
    (ordered ? clusters_ordered : clusters_shuffled) =
        result.clusters.num_sets();
    t.add_row({ordered ? "decreasing match length" : "shuffled",
               util::fmt_count(result.stats.pairs_generated),
               util::fmt_count(result.stats.pairs_aligned),
               util::fmt_percent(result.stats.savings_fraction()),
               util::fmt_count(result.clusters.num_sets()),
               util::fmt_double(timer.elapsed(), 2)});
  }
  t.print();
  std::printf("same final clustering: %s (must be yes — transitive closure)\n",
              clusters_ordered == clusters_shuffled ? "yes" : "NO (bug!)");

  // --- duplicate elimination -----------------------------------------------
  std::printf("\n");
  const auto doubled = seq::make_doubled_store(pre.store);
  gst::SuffixTree tree(doubled,
                       gst::GstParams{.min_match = params.psi, .prefix_w = 0});
  util::Table t2({"generation mode", "pairs emitted", "memory (MB)"});
  for (const bool dup_elim : {true, false}) {
    gst::PairGenerator gen(tree,
                           {.dup_elim = dup_elim, .doubled_input = true});
    gst::PromisingPair p;
    std::uint64_t n = 0, peak_mem = 0;
    while (gen.next(p)) {
      ++n;
      if ((n & 0xFFF) == 0) peak_mem = std::max(peak_mem, gen.memory_bytes());
    }
    peak_mem = std::max(peak_mem, gen.memory_bytes());
    t2.add_row({dup_elim ? "fragment-level (dup elim)"
                         : "suffix-level (all maximal matches)",
                util::fmt_count(n),
                util::fmt_double(static_cast<double>(peak_mem) / 1e6, 1)});
  }
  t2.print();
  std::printf(
      "\nexpected shape: ordered processing aligns strictly fewer pairs "
      "with the\nsame final clustering; dup-elim emits fewer (or equal) "
      "pairs than suffix-level.\n");
  return 0;
}
