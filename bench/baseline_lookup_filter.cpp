// Baseline comparison (paper Section 2): the classic fixed-length
// lookup-table filter vs the paper's maximal-match promising-pair
// generator, on the same preprocessed maize-style data.
//
// The paper's argument: a long exact match of length l shows up as
// (l - w + 1) w-mer hits in the lookup table, the table is exponential in
// w (so w stays 10-11), and the table cannot order pairs by match quality.
// The GST generator emits each fragment pair at most once per *distinct
// maximal match*, in decreasing match-length order, in O(N) space.
//
//   ./baseline_lookup_filter --bp 400000 --w 11
#include "bench_util.hpp"
#include "gst/lookup_filter.hpp"
#include "gst/pair_generator.hpp"
#include "gst/suffix_tree.hpp"
#include "util/union_find.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 400'000);
  const std::uint32_t w =
      static_cast<std::uint32_t>(flags.get_u64("w", 11));
  const std::uint32_t psi =
      static_cast<std::uint32_t>(flags.get_u64("psi", 20));
  const std::uint64_t seed = flags.get_u64("seed", 12);
  flags.finish();

  bench::print_header(
      "Baseline — w-mer lookup-table filter vs GST maximal-match generator "
      "(paper §2 vs §5)",
      "pair volume, filter memory, and clustering alignment work");

  const auto rs = bench::maize_dataset(bp, seed);
  preprocess::PreprocessParams pp;
  pp.repeat.sample_fraction = 1.0;
  const auto pre = preprocess::preprocess(rs.store, sim::vector_library(), pp);
  const auto doubled = seq::make_doubled_store(pre.store);
  std::printf("input: %s fragments, %s bp (doubled for both filters)\n",
              util::fmt_count(pre.store.size()).c_str(),
              util::fmt_count(pre.store.total_length()).c_str());

  const align::OverlapParams overlap{
      .scoring = {}, .min_overlap = 40, .min_identity = 0.93, .band = 10};

  struct Run {
    std::string name;
    std::uint64_t pairs = 0;
    std::uint64_t aligned = 0;
    std::uint64_t memory = 0;
    double seconds = 0;
    std::size_t clusters = 0;
  };
  std::vector<Run> runs;

  // --- GST maximal-match generator (the paper's filter) -------------------
  {
    Run run{.name = "GST maximal matches (psi=" + std::to_string(psi) + ")"};
    util::WallTimer timer;
    gst::SuffixTree tree(doubled,
                         gst::GstParams{.min_match = psi, .prefix_w = 0});
    gst::PairGenerator gen(tree, {.dup_elim = true, .doubled_input = true});
    util::UnionFind uf(pre.store.size());
    gst::PromisingPair p;
    while (gen.next(p)) {
      ++run.pairs;
      const std::uint32_t fa = p.seq_a >> 1, fb = p.seq_b >> 1;
      if (uf.same(fa, fb)) continue;
      ++run.aligned;
      if (core::pair_overlaps(doubled, p.seq_a, p.pos_a, p.seq_b, p.pos_b,
                              overlap)) {
        uf.unite(fa, fb);
      }
    }
    run.memory = tree.memory_bytes() + gen.memory_bytes();
    run.seconds = timer.elapsed();
    run.clusters = uf.num_sets();
    runs.push_back(run);
  }

  // --- Lookup-table filter (the classic baseline) --------------------------
  for (const bool dedup : {false, true}) {
    Run run{.name = std::string("lookup table w=") + std::to_string(w) +
                    (dedup ? " (dedup/word)" : " (raw)")};
    util::WallTimer timer;
    gst::LookupFilter filter(
        doubled, {.w = w, .doubled_input = true, .dedup_per_word = dedup});
    util::UnionFind uf(pre.store.size());
    gst::PromisingPair p;
    while (filter.next(p)) {
      ++run.pairs;
      const std::uint32_t fa = p.seq_a >> 1, fb = p.seq_b >> 1;
      if (uf.same(fa, fb)) continue;
      ++run.aligned;
      if (core::pair_overlaps(doubled, p.seq_a, p.pos_a, p.seq_b, p.pos_b,
                              overlap)) {
        uf.unite(fa, fb);
      }
    }
    run.memory = filter.stats().table_bytes;
    run.seconds = timer.elapsed();
    run.clusters = uf.num_sets();
    runs.push_back(run);
    if (!dedup && !filter.stats().top_words.empty()) {
      // Where the duplicate volume comes from: the handful of words that
      // anchor the most pairs (canonical order — identical run to run).
      std::printf("  heaviest words (raw filter): ");
      for (const auto& [word, pairs] : filter.stats().top_words) {
        std::printf("%llx:%llu ", static_cast<unsigned long long>(word),
                    static_cast<unsigned long long>(pairs));
      }
      std::printf("\n");
    }
  }

  util::Table t({"filter", "pairs emitted", "pairs aligned", "filter memory",
                 "wall (s)", "clusters"});
  for (const auto& run : runs) {
    t.add_row({run.name, util::fmt_count(run.pairs),
               util::fmt_count(run.aligned), util::fmt_bytes(run.memory),
               util::fmt_double(run.seconds, 2),
               util::fmt_count(run.clusters)});
  }
  t.print();
  std::printf(
      "\nexpected shape (paper §2/§5): the lookup table emits each long "
      "overlap\n(l - w + 1) times and costs 4^w table slots; the GST "
      "generator emits each\npair once per distinct maximal match, in "
      "quality order, in O(N) space.\nNote the clusterings agree where the "
      "criteria coincide.\n");
  return 0;
}
