// Reproduces paper Fig. 5: parallel run-times for constructing the GST on
// two input sizes, broken into communication and computation, as the
// processor count grows.
//
// Paper: 250 M and 500 M bp on 256..1024 BlueGene/L nodes; here (scaled
// ~200x): two inputs on 2..16 vmpi ranks, with the alpha-beta cost model
// providing the modeled parallel times. Expected shape: both components
// scale ~linearly with 1/p and with input size.
//
//   ./fig5_gst_scaling --small 1200000 --large 2400000 --max-ranks 16
#include "bench_util.hpp"
#include "gst/parallel_build.hpp"
#include "vmpi/runtime.hpp"

using namespace pgasm;

namespace {

struct Row {
  int ranks;
  double comp, comm, total;
  std::uint64_t suffixes;
};

Row run_one(const seq::FragmentStore& doubled, int ranks) {
  Row row{ranks, 0, 0, 0, 0};
  std::vector<double> comp(ranks, 0), comm(ranks, 0);
  std::vector<std::uint64_t> suffixes(ranks, 0);
  vmpi::Runtime rt(ranks);
  rt.run([&](vmpi::Comm& c) {
    gst::ParallelGstParams params;
    params.gst = gst::GstParams{.min_match = 20, .prefix_w = 6};
    params.fetch_batch_chars = 1u << 18;
    auto dist = gst::build_distributed_gst(c, doubled, params);
    comp[c.rank()] = dist.stats.compute_seconds;
    comm[c.rank()] = dist.stats.comm_seconds;
    suffixes[c.rank()] = dist.stats.local_suffixes;
  });
  for (int r = 0; r < ranks; ++r) {
    row.comp = std::max(row.comp, comp[r]);
    row.comm = std::max(row.comm, comm[r]);
    row.suffixes += suffixes[r];
  }
  row.total = row.comp + row.comm;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t small_bp = flags.get_u64("small", 1'000'000);
  const std::uint64_t large_bp = flags.get_u64("large", 2'000'000);
  const int max_ranks = static_cast<int>(flags.get_i64("max-ranks", 16));
  const std::uint64_t seed = flags.get_u64("seed", 55);
  flags.finish();

  bench::print_header(
      "Fig. 5 — parallel GST construction run-times (comm vs comp)",
      "paper: 250M/500M bp on 256..1024 nodes; here: scaled inputs on "
      "2..16 vmpi ranks, alpha-beta modeled seconds");

  bench::BenchJson bj("fig5_gst_scaling");
  bj.param("small_bp", small_bp);
  bj.param("large_bp", large_bp);
  bj.param("max_ranks", max_ranks);
  bj.param("seed", seed);

  for (const std::uint64_t bp : {small_bp, large_bp}) {
    const auto rs = bench::maize_dataset(bp, seed);
    const auto doubled = seq::make_doubled_store(rs.store);
    std::printf("\ninput: %s fragments, %s bp (x2 with reverse complements)\n",
                util::fmt_count(rs.store.size()).c_str(),
                util::fmt_count(rs.store.total_length()).c_str());
    util::Table t({"ranks", "computation (s)", "communication (s)",
                   "total modeled (s)", "efficiency", "suffixes"});
    double base = 0;
    for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
      const Row row = run_one(doubled, ranks);
      if (base == 0) base = row.total * ranks;  // reference: work at p=2
      t.add_row({std::to_string(ranks), util::fmt_double(row.comp, 4),
                 util::fmt_double(row.comm, 4), util::fmt_double(row.total, 4),
                 util::fmt_double(base / ranks / row.total, 2),
                 util::fmt_count(row.suffixes)});
      bj.point()
          .set("input_bp", bp)
          .set("ranks", ranks)
          .set("compute_s", row.comp)
          .set("comm_s", row.comm)
          .set("total_s", row.total)
          .set("efficiency", base / ranks / row.total)
          .set("suffixes", row.suffixes);
    }
    t.print();
  }
  bj.write();
  std::printf(
      "\nexpected shape (paper Fig. 5): total time ~halves when ranks "
      "double;\ncommunication stays a minor fraction of computation.\n");
  return 0;
}
