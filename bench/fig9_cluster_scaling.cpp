// Reproduces paper Fig. 9 plus the Section 7.2 idle-time/availability
// discussion: total parallel clustering run-time (GST construction
// excluded, as in the paper) as a function of processor count, for two
// input sizes.
//
// Paper observations to match in shape:
//   * larger inputs scale better (relative speedup 3.1x vs 2.6x when
//     quadrupling processors),
//   * average worker idle time grows with p at fixed input size,
//   * master availability falls as p grows (90% -> 70% on 256 -> 1024).
//
//   ./fig9_cluster_scaling --small 600000 --large 1200000 --max-ranks 16
#include "bench_util.hpp"
#include "core/parallel_cluster.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t small_bp = flags.get_u64("small", 600'000);
  const std::uint64_t large_bp = flags.get_u64("large", 1'200'000);
  const int max_ranks = static_cast<int>(flags.get_i64("max-ranks", 16));
  const std::uint64_t seed = flags.get_u64("seed", 99);
  flags.finish();

  bench::print_header(
      "Fig. 9 — total parallel clustering time vs processors",
      "paper: 250M/500M bp on 256..1024 nodes; here: scaled inputs on "
      "3..16 vmpi ranks (1 master + workers), modeled seconds");

  bench::BenchJson bj("fig9_cluster_scaling");
  bj.param("small_bp", small_bp);
  bj.param("large_bp", large_bp);
  bj.param("max_ranks", max_ranks);
  bj.param("seed", seed);

  const auto params = bench::bench_cluster_params();
  for (const std::uint64_t bp : {small_bp, large_bp}) {
    const auto rs = bench::maize_dataset(bp, seed);
    // Preprocess once (masking) so clustering sees the paper's regime.
    preprocess::PreprocessParams pp;
    pp.repeat.sample_fraction = 1.0;
    const auto pre = preprocess::preprocess(rs.store, sim::vector_library(), pp);
    std::printf("\ninput: %s fragments, %s bp after preprocessing\n",
                util::fmt_count(pre.store.size()).c_str(),
                util::fmt_count(pre.store.total_length()).c_str());
    util::Table t({"ranks", "cluster modeled (s)", "rel speedup",
                   "worker idle", "master avail", "aligned", "accepted"});
    double base_time = 0;
    int base_ranks = 0;
    for (int ranks = 3; ranks <= max_ranks; ranks *= 2) {
      const auto result = core::cluster_parallel(pre.store, params, ranks);
      const double time = result.stats.cluster_modeled_seconds;
      if (base_time == 0) {
        base_time = time;
        base_ranks = ranks;
      }
      t.add_row({std::to_string(ranks), util::fmt_double(time, 4),
                 util::fmt_double(base_time / time, 2) + "x vs " +
                     std::to_string(base_ranks),
                 util::fmt_percent(result.stats.worker_idle_fraction),
                 util::fmt_percent(result.stats.master_availability),
                 util::fmt_count(result.stats.pairs_aligned),
                 util::fmt_count(result.stats.pairs_accepted)});
      bj.point()
          .set("input_bp", bp)
          .set("ranks", ranks)
          .set("cluster_modeled_s", time)
          .set("rel_speedup", base_time / time)
          .set("worker_idle_fraction", result.stats.worker_idle_fraction)
          .set("master_availability", result.stats.master_availability)
          .set("pairs_aligned", result.stats.pairs_aligned)
          .set("pairs_accepted", result.stats.pairs_accepted);
    }
    t.print();
  }
  // --- §7.2 extension: adaptive dispatch granularity ----------------------
  {
    const auto rs = bench::maize_dataset(large_bp, seed);
    preprocess::PreprocessParams pp;
    pp.repeat.sample_fraction = 1.0;
    const auto pre =
        preprocess::preprocess(rs.store, sim::vector_library(), pp);
    std::printf("\nadaptive dispatch granularity (batch scales with p), "
                "%d ranks:\n", max_ranks);
    util::Table t({"batching", "master msgs recv", "master avail",
                   "cluster modeled (s)"});
    auto adaptive_params = params;
    for (const bool adaptive : {false, true}) {
      adaptive_params.adaptive_batch = adaptive;
      const auto result =
          core::cluster_parallel(pre.store, adaptive_params, max_ranks);
      t.add_row({adaptive ? "batch ∝ workers" : "fixed batch",
                 util::fmt_count(result.cost.per_rank[0].msgs_recv),
                 util::fmt_percent(result.stats.master_availability),
                 util::fmt_double(result.stats.cluster_modeled_seconds, 4)});
      bj.point()
          .set("input_bp", large_bp)
          .set("ranks", max_ranks)
          .set("adaptive_batch", adaptive)
          .set("master_msgs_recv", result.cost.per_rank[0].msgs_recv)
          .set("master_availability", result.stats.master_availability)
          .set("cluster_modeled_s", result.stats.cluster_modeled_seconds);
    }
    t.print();
  }
  bj.write();
  std::printf(
      "\nexpected shape (paper Fig. 9 / §7.2): the larger input scales "
      "better;\nworker idle %% grows with ranks at fixed input; master "
      "availability falls;\nadaptive granularity cuts the master's message "
      "load.\n");
  return 0;
}
