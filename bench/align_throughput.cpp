// Micro-benchmark for the allocation-free overlap engine refactor: pairs
// per second and heap bytes per pair through the suffix–prefix alignment
// kernels, full-matrix and banded, with and without workspace reuse.
//
// The "reference" variant is the pre-refactor allocating banded kernel
// (banded_overlap_align_reference), kept bit-identical to the workspace
// kernel precisely so this comparison isolates memory discipline from
// algorithmic change. Heap traffic is measured for real by counting every
// global operator new in the process — after warmup the reuse variants must
// report zero bytes per pair.
//
//   ./align_throughput --pairs 4000 --len 600 --overlap 120 --band 12
//
// Writes BENCH_align_throughput.json.
#include <cstdint>
#include <cstdlib>
#include <new>

// Global allocation counters. The bench is single-threaded; plain counters
// are fine, and keeping the hooks trivial avoids distorting the timing.
namespace {
std::uint64_t g_heap_bytes = 0;
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  g_heap_bytes += n;
  ++g_heap_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include <functional>
#include <string>
#include <vector>

#include "align/overlap.hpp"
#include "align/workspace.hpp"
#include "bench_util.hpp"
#include "util/timer.hpp"

using namespace pgasm;

namespace {

struct BenchPair {
  std::vector<seq::Code> a, b;
  std::int32_t shift = 0;
};

/// Deterministic suffix–prefix overlap pairs: b's prefix repeats a's suffix
/// (with ~2% substitutions), lengths jittered so buffer shapes vary the way
/// a real promising-pair stream varies them.
std::vector<BenchPair> make_pairs(std::size_t n, std::size_t len,
                                  std::size_t overlap, std::uint64_t seed) {
  util::Prng rng(seed);
  std::vector<BenchPair> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BenchPair p;
    const std::size_t la = len / 2 + rng.below(len);
    const std::size_t lb = len / 2 + rng.below(len);
    const std::size_t ov = std::min({overlap / 2 + rng.below(overlap), la, lb});
    p.a.resize(la);
    for (auto& c : p.a) c = static_cast<seq::Code>(rng.below(4));
    p.b.resize(lb);
    const std::size_t s = la - ov;  // b starts at a[s]
    for (std::size_t j = 0; j < lb; ++j) {
      if (j < ov && rng.below(100) >= 2) {
        p.b[j] = p.a[s + j];
      } else {
        p.b[j] = static_cast<seq::Code>(rng.below(4));
      }
    }
    p.shift = -static_cast<std::int32_t>(s);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

struct Measurement {
  double seconds = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t pairs = 0;
  long long checksum = 0;  // defeats dead-code elimination; printed for diffs

  double pairs_per_sec() const {
    return seconds > 0 ? static_cast<double>(pairs) / seconds : 0;
  }
  double bytes_per_pair() const {
    return pairs ? static_cast<double>(heap_bytes) /
                       static_cast<double>(pairs)
                 : 0;
  }
  double allocs_per_pair() const {
    return pairs ? static_cast<double>(heap_allocs) /
                       static_cast<double>(pairs)
                 : 0;
  }
};

/// One warmup pass (grows any persistent workspace to its high-water mark),
/// then `reps` measured passes over the whole pair list.
Measurement run_variant(const std::vector<BenchPair>& pairs, std::size_t reps,
                        const std::function<long long(const BenchPair&)>& fn) {
  Measurement m;
  for (const BenchPair& p : pairs) m.checksum += fn(p);
  m.checksum = 0;
  const std::uint64_t bytes0 = g_heap_bytes;
  const std::uint64_t allocs0 = g_heap_allocs;
  util::WallTimer t;
  for (std::size_t r = 0; r < reps; ++r) {
    for (const BenchPair& p : pairs) m.checksum += fn(p);
  }
  m.seconds = t.elapsed();
  m.heap_bytes = g_heap_bytes - bytes0;
  m.heap_allocs = g_heap_allocs - allocs0;
  m.pairs = static_cast<std::uint64_t>(pairs.size()) * reps;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::size_t n_pairs = flags.get_u64("pairs", 4000);
  const std::size_t len = flags.get_u64("len", 600);
  const std::size_t overlap = flags.get_u64("overlap", 120);
  const std::uint32_t band = static_cast<std::uint32_t>(flags.get_u64("band", 12));
  const std::size_t reps = flags.get_u64("reps", 3);
  const std::uint64_t seed = flags.get_u64("seed", 17);
  flags.finish();

  bench::print_header(
      "Alignment hot path — allocation-free workspace refactor",
      "pairs/sec and heap bytes/pair, full vs banded, with/without reuse");

  const auto pairs = make_pairs(n_pairs, len, overlap, seed);
  const align::Scoring sc;

  struct Variant {
    const char* name;
    Measurement m;
  };
  std::vector<Variant> variants;

  {  // Pre-refactor allocating banded kernel (fresh buffers every call).
    variants.push_back({"banded_reference",
                        run_variant(pairs, reps, [&](const BenchPair& p) {
                          return static_cast<long long>(
                              align::banded_overlap_align_reference(
                                  p.a, p.b, sc, p.shift, band)
                                  .aln.score);
                        })});
  }
  {  // Workspace kernel, but a fresh workspace per pair (reuse disabled).
    variants.push_back({"banded_fresh_ws",
                        run_variant(pairs, reps, [&](const BenchPair& p) {
                          align::Workspace ws;
                          return static_cast<long long>(
                              align::banded_overlap_align(p.a, p.b, sc,
                                                          p.shift, band, ws)
                                  .aln.score);
                        })});
  }
  {  // Workspace kernel with one persistent workspace (the engine path).
    align::Workspace ws;
    variants.push_back({"banded_reuse",
                        run_variant(pairs, reps, [&](const BenchPair& p) {
                          return static_cast<long long>(
                              align::banded_overlap_align(p.a, p.b, sc,
                                                          p.shift, band, ws)
                                  .aln.score);
                        })});
  }
  {  // Full-matrix end-free alignment, fresh workspace per pair.
    variants.push_back({"full_fresh_ws",
                        run_variant(pairs, reps, [&](const BenchPair& p) {
                          align::Workspace ws;
                          return static_cast<long long>(
                              align::overlap_align(p.a, p.b, sc, ws)
                                  .aln.score);
                        })});
  }
  {  // Full-matrix with one persistent workspace.
    align::Workspace ws;
    variants.push_back({"full_reuse",
                        run_variant(pairs, reps, [&](const BenchPair& p) {
                          return static_cast<long long>(
                              align::overlap_align(p.a, p.b, sc, ws)
                                  .aln.score);
                        })});
  }

  util::Table t({"variant", "pairs/s", "B/pair", "allocs/pair", "seconds",
                 "checksum"});
  for (const Variant& v : variants) {
    t.add_row({v.name, util::fmt_count(static_cast<std::uint64_t>(
                           v.m.pairs_per_sec())),
               util::fmt_double(v.m.bytes_per_pair(), 1),
               util::fmt_double(v.m.allocs_per_pair(), 3),
               util::fmt_double(v.m.seconds, 3),
               std::to_string(v.m.checksum)});
  }
  t.print();

  const Measurement& ref = variants[0].m;
  const Measurement& reuse = variants[2].m;
  const double speedup =
      ref.pairs_per_sec() > 0 ? reuse.pairs_per_sec() / ref.pairs_per_sec()
                              : 0;
  std::printf("\nbanded reuse vs allocating reference: %.2fx pairs/sec, "
              "%.0f -> %.0f heap bytes/pair\n",
              speedup, ref.bytes_per_pair(), reuse.bytes_per_pair());

  bench::BenchJson bj("align_throughput");
  bj.param("pairs", n_pairs);
  bj.param("len", len);
  bj.param("overlap", overlap);
  bj.param("band", static_cast<std::uint64_t>(band));
  bj.param("reps", reps);
  bj.param("seed", seed);
  bj.param("banded_speedup_vs_reference", speedup);
  for (const Variant& v : variants) {
    auto& pt = bj.point();
    pt.set("variant", v.name)
        .set("pairs", v.m.pairs)
        .set("seconds", v.m.seconds)
        .set("pairs_per_sec", v.m.pairs_per_sec())
        .set("heap_bytes_per_pair", v.m.bytes_per_pair())
        .set("heap_allocs_per_pair", v.m.allocs_per_pair())
        .set("checksum", static_cast<std::int64_t>(v.m.checksum));
  }
  bj.write();
  return 0;
}
