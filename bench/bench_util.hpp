// Shared dataset builders and reporting helpers for the bench binaries.
//
// Each bench regenerates one table or figure of the paper at a scaled-down
// size (see DESIGN.md section 6 for the scaling map). Datasets are
// deterministic in the seed so EXPERIMENTS.md numbers are replayable.
#pragma once

#include <cstdio>
#include <string>

#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace pgasm::bench {

/// Maize-style mixed dataset (MF + HC + BAC + WGS) over a repeat-rich
/// genome, sized so the read set totals roughly `target_bp` characters.
inline sim::ReadSet maize_dataset(std::uint64_t target_bp,
                                  std::uint64_t seed) {
  // Reads average ~650 bp; the genome is sized for ~2.5X total coverage,
  // mirroring the pilot project's mixture of deep genic / shallow genomic.
  const std::uint64_t genome_len = target_bp / 5 * 2;
  const auto genome = sim::simulate_genome(sim::maize_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 650;
  rp.len_spread = 150;
  const std::uint64_t enriched_bp = target_bp * 3 / 10;  // MF + HC ~60%
  const std::size_t enriched_n = enriched_bp / rp.len_mean;
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.90, rp, rng,
                            seq::FragType::kMF);
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.85, rp, rng,
                            seq::FragType::kHC);
  sim::sample_bac(rs, genome, 2,
                  static_cast<std::uint32_t>(genome_len / 20), 0.5, rp, rng);
  // Fill the remainder with WGS.
  const std::uint64_t have = rs.store.total_length();
  if (have < target_bp) {
    const double cov = static_cast<double>(target_bp - have) /
                       static_cast<double>(genome_len);
    sim::sample_wgs(rs, genome, cov, rp, rng);
  }
  return rs;
}

/// Uniform WGS dataset (Drosophila-style) totalling ~target_bp.
inline sim::ReadSet wgs_dataset(std::uint64_t target_bp, double coverage,
                                std::uint64_t seed) {
  const std::uint64_t genome_len =
      static_cast<std::uint64_t>(static_cast<double>(target_bp) / coverage);
  const auto genome =
      sim::simulate_genome(sim::shotgun_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, coverage, rp, rng);
  return rs;
}

/// Environmental (Sargasso-style) dataset totalling ~target_bp.
inline sim::ReadSet env_dataset(std::uint64_t target_bp, std::uint32_t species,
                                std::uint64_t seed) {
  sim::CommunityParams cp;
  cp.num_species = species;
  cp.genome_len_min = 8'000;
  cp.genome_len_max = 40'000;
  cp.seed = seed;
  const auto community = sim::simulate_community(cp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 600;
  rp.len_spread = 120;
  sim::sample_community(rs, community, target_bp / rp.len_mean, rp, rng);
  return rs;
}

/// Clustering parameters used across benches (the paper's regime scaled).
inline core::ClusterParams bench_cluster_params() {
  core::ClusterParams p;
  p.psi = 20;
  p.prefix_w = 6;
  p.overlap.min_overlap = 40;
  p.overlap.min_identity = 0.93;
  p.overlap.band = 10;
  p.batch_size = 128;
  return p;
}

inline void print_header(const char* paper_ref, const char* what) {
  std::printf("=====================================================\n");
  std::printf("%s\n", paper_ref);
  std::printf("%s\n", what);
  std::printf("=====================================================\n");
}

}  // namespace pgasm::bench
