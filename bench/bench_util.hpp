// Shared dataset builders and reporting helpers for the bench binaries.
//
// Each bench regenerates one table or figure of the paper at a scaled-down
// size (see DESIGN.md section 6 for the scaling map). Datasets are
// deterministic in the seed so EXPERIMENTS.md numbers are replayable.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "pipeline/validation.hpp"
#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/reads.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "vmpi/transport.hpp"

namespace pgasm::bench {

/// Maize-style mixed dataset (MF + HC + BAC + WGS) over a repeat-rich
/// genome, sized so the read set totals roughly `target_bp` characters.
inline sim::ReadSet maize_dataset(std::uint64_t target_bp,
                                  std::uint64_t seed) {
  // Reads average ~650 bp; the genome is sized for ~2.5X total coverage,
  // mirroring the pilot project's mixture of deep genic / shallow genomic.
  const std::uint64_t genome_len = target_bp / 5 * 2;
  const auto genome = sim::simulate_genome(sim::maize_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 650;
  rp.len_spread = 150;
  const std::uint64_t enriched_bp = target_bp * 3 / 10;  // MF + HC ~60%
  const std::size_t enriched_n = enriched_bp / rp.len_mean;
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.90, rp, rng,
                            seq::FragType::kMF);
  sim::sample_gene_enriched(rs, genome, enriched_n, 0.85, rp, rng,
                            seq::FragType::kHC);
  sim::sample_bac(rs, genome, 2,
                  static_cast<std::uint32_t>(genome_len / 20), 0.5, rp, rng);
  // Fill the remainder with WGS.
  const std::uint64_t have = rs.store.total_length();
  if (have < target_bp) {
    const double cov = static_cast<double>(target_bp - have) /
                       static_cast<double>(genome_len);
    sim::sample_wgs(rs, genome, cov, rp, rng);
  }
  return rs;
}

/// Uniform WGS dataset (Drosophila-style) totalling ~target_bp.
inline sim::ReadSet wgs_dataset(std::uint64_t target_bp, double coverage,
                                std::uint64_t seed) {
  const std::uint64_t genome_len =
      static_cast<std::uint64_t>(static_cast<double>(target_bp) / coverage);
  const auto genome =
      sim::simulate_genome(sim::shotgun_like(genome_len, seed));
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, coverage, rp, rng);
  return rs;
}

/// Environmental (Sargasso-style) dataset totalling ~target_bp.
inline sim::ReadSet env_dataset(std::uint64_t target_bp, std::uint32_t species,
                                std::uint64_t seed) {
  sim::CommunityParams cp;
  cp.num_species = species;
  cp.genome_len_min = 8'000;
  cp.genome_len_max = 40'000;
  cp.seed = seed;
  const auto community = sim::simulate_community(cp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 600;
  rp.len_spread = 120;
  sim::sample_community(rs, community, target_bp / rp.len_mean, rp, rng);
  return rs;
}

/// Clustering parameters used across benches (the paper's regime scaled).
inline core::ClusterParams bench_cluster_params() {
  core::ClusterParams p;
  p.psi = 20;
  p.prefix_w = 6;
  p.overlap.min_overlap = 40;
  p.overlap.min_identity = 0.93;
  p.overlap.band = 10;
  p.batch_size = 128;
  return p;
}

/// Best-effort `git describe` of the working tree, "" when unavailable
/// (not a git checkout, or git not installed). Stamped into BENCH_*.json
/// metadata so perf_diff can report which revisions it is comparing.
inline std::string git_describe() {
  std::string out;
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), p) != nullptr) out += buf;
    ::pclose(p);
  }
#endif
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

inline void print_header(const char* paper_ref, const char* what) {
  std::printf("=====================================================\n");
  std::printf("%s\n", paper_ref);
  std::printf("%s\n", what);
  std::printf("=====================================================\n");
}

/// Machine-readable companion to the printed tables: collects run
/// parameters and per-configuration data points, then writes
/// BENCH_<name>.json in the working directory so CI and plotting scripts
/// can diff runs without scraping stdout.
///
///   bench::BenchJson bj("fig5_gst_scaling");
///   bj.param("ranks", 16);
///   auto& pt = bj.point();
///   pt.set("ranks", 4).set("total_s", 0.123);
///   bj.write();
class BenchJson {
 public:
  /// One data point: an ordered list of key -> JSON-value pairs.
  class Point {
   public:
    Point& set(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, quote(v));
      return *this;
    }
    Point& set(const std::string& key, const char* v) {
      return set(key, std::string(v));
    }
    Point& set(const std::string& key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      // JSON has no inf/nan literals.
      fields_.emplace_back(key, std::isfinite(v) ? buf : "null");
      return *this;
    }
    Point& set(const std::string& key, bool v) {
      fields_.emplace_back(key, v ? "true" : "false");
      return *this;
    }
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    Point& set(const std::string& key, T v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }

   private:
    friend class BenchJson;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchJson(std::string name) : name_(std::move(name)) {
    // Run metadata, stamped into every file: perf_diff refuses to compare
    // points measured under different build types or vmpi transports, and
    // records revisions. The transport is the run's effective default
    // (PGASM_TRANSPORT or "thread") — thread and proc numbers live in
    // different performance regimes (shared-memory rings + real context
    // switches vs in-process mailboxes) and must never diff against each
    // other. A bench that varies the transport per point should also set a
    // "transport" field on its points (config_signature separates them).
    meta_.set("git", git_describe());
#ifdef PGASM_BUILD_TYPE
    meta_.set("build_type", PGASM_BUILD_TYPE);
#else
    meta_.set("build_type", "");
#endif
    meta_.set("transport",
              vmpi::transport_name(vmpi::resolve_transport("")));
    meta_.set("hardware_threads", std::thread::hardware_concurrency());
  }

  /// Record a run parameter (flag value, dataset size, ...).
  template <typename T>
  void param(const std::string& key, T v) {
    params_.set(key, v);
  }

  /// Start a new data point; returned reference stays valid until the next
  /// point() call or write().
  Point& point() {
    points_.emplace_back();
    return points_.back();
  }

  /// Write BENCH_<name>.json (or to an explicit path). Prints the path to
  /// stderr so bench logs record where the data went.
  void write(const std::string& path = "") const {
    const std::string out_path =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write " + out_path);
    out << "{\n  \"bench\": " << Point::quote(name_) << ",\n  \"meta\": ";
    write_object(out, meta_, "  ");
    out << ",\n  \"params\": ";
    write_object(out, params_, "  ");
    out << ",\n  \"points\": [";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ");
      write_object(out, points_[i], "    ");
    }
    out << (points_.empty() ? "]" : "\n  ]") << "\n}\n";
    if (!out.flush()) throw std::runtime_error("cannot write " + out_path);
    std::fprintf(stderr, "wrote %s (%zu points)\n", out_path.c_str(),
                 points_.size());
  }

 private:
  static void write_object(std::ofstream& out, const Point& p,
                           const std::string&) {
    out << "{";
    for (std::size_t i = 0; i < p.fields_.size(); ++i) {
      out << (i ? ", " : "") << Point::quote(p.fields_[i].first) << ": "
          << p.fields_[i].second;
    }
    out << "}";
  }

  std::string name_;
  Point meta_;
  Point params_;
  std::vector<Point> points_;
};

}  // namespace pgasm::bench
