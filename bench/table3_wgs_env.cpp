// Reproduces paper Table 3: clustering performance on whole-genome-shotgun
// (D. pseudoobscura) and environmental (Sargasso Sea) data — input sizes,
// clustering times (GST phase and total), and the promising-pair economy
// (aligned: accepted/rejected; not aligned = savings).
//
// Paper shape: comparable total times when aligned-pair counts are
// comparable; savings 65% (fly) and 57% (Sargasso); accepted is a minority
// of aligned pairs.
//
//   ./table3_wgs_env --bp 1200000 --ranks 8
#include "bench_util.hpp"
#include "core/parallel_cluster.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 1'000'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 8));
  const std::uint64_t seed = flags.get_u64("seed", 9);
  flags.finish();

  bench::print_header(
      "Table 3 — WGS (Drosophila-style) and environmental (Sargasso-style) "
      "clustering",
      "paper: 2.07M / 1.66M fragments on 1024 nodes; here scaled ~1000x on "
      "vmpi ranks, modeled seconds");

  struct Dataset {
    const char* name;
    sim::ReadSet rs;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"Drosophila (WGS 8.8X)",
                      bench::wgs_dataset(bp, 8.8, seed)});
  datasets.push_back({"Sargasso Sea (env)",
                      bench::env_dataset(bp, /*species=*/60, seed + 1)});

  util::Table t({"input data", "fragments", "Mbp", "GST (s)", "total (s)",
                 "aligned:accepted", "aligned:rejected", "not aligned",
                 "% savings"});
  const auto base_params = bench::bench_cluster_params();
  for (auto& ds : datasets) {
    preprocess::PreprocessParams pp;
    pp.repeat.sample_fraction = 0.15;
    const auto pre =
        preprocess::preprocess(ds.rs.store, sim::vector_library(), pp);
    const auto result = core::cluster_parallel(pre.store, base_params, ranks);
    const auto& st = result.stats;
    t.add_row({ds.name, util::fmt_count(pre.store.size()),
               util::fmt_double(
                   static_cast<double>(pre.store.total_length()) / 1e6, 2),
               util::fmt_double(st.gst_modeled_seconds, 3),
               util::fmt_double(
                   st.gst_modeled_seconds + st.cluster_modeled_seconds, 3),
               util::fmt_count(st.pairs_accepted),
               util::fmt_count(st.pairs_aligned - st.pairs_accepted),
               util::fmt_count(st.pairs_generated - st.pairs_aligned),
               util::fmt_percent(st.savings_fraction())});
  }
  t.print();
  std::printf(
      "\nexpected shape (paper Table 3): both datasets show majority "
      "savings\n(65%% fly / 57%% Sargasso in the paper); GST construction "
      "is a small\nfraction of the total; accepted < aligned.\n");
  return 0;
}
