// Reproduces paper Table 2: maize fragment counts and total lengths by
// sequencing strategy (MF, HC, BAC, WGS), before and after preprocessing
// (vector screening + repeat masking + invalidation).
//
// Paper shape: shotgun-derived fragments lose ~60-65% to repeat masking
// while the gene-enrichment strategies (MF/HC) are largely preserved;
// total input shrinks from 3.12M fragments / 2.5 Gbp to 1.61M / 1.5 Gbp.
//
//   ./table2_preprocessing --bp 2000000
#include "bench_util.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 1'500'000);
  const std::uint64_t seed = flags.get_u64("seed", 2006);
  flags.finish();

  bench::print_header(
      "Table 2 — maize fragment types before/after preprocessing",
      "paper: 3.1M fragments, 2.5 Gbp; here: maize-style mixture scaled "
      "~1000x");

  const auto rs = bench::maize_dataset(bp, seed);
  preprocess::PreprocessParams pp;
  pp.repeat.sample_fraction = 1.0;
  const auto pre = preprocess::preprocess(rs.store, sim::vector_library(), pp);

  util::Table t({"type", "frags before", "Mbp before", "frags after",
                 "Mbp after", "fragment survival"});
  std::uint64_t fb = 0, bb = 0, fa = 0, ba = 0;
  for (const auto& [type, ts] : pre.stats.by_type) {
    t.add_row({seq::frag_type_name(type),
               util::fmt_count(ts.fragments_before),
               util::fmt_double(static_cast<double>(ts.bases_before) / 1e6, 3),
               util::fmt_count(ts.fragments_after),
               util::fmt_double(static_cast<double>(ts.bases_after) / 1e6, 3),
               util::fmt_percent(
                   ts.fragments_before
                       ? static_cast<double>(ts.fragments_after) /
                             static_cast<double>(ts.fragments_before)
                       : 0.0)});
    fb += ts.fragments_before;
    bb += ts.bases_before;
    fa += ts.fragments_after;
    ba += ts.bases_after;
  }
  t.add_row({"Total", util::fmt_count(fb),
             util::fmt_double(static_cast<double>(bb) / 1e6, 3),
             util::fmt_count(fa),
             util::fmt_double(static_cast<double>(ba) / 1e6, 3),
             util::fmt_percent(fb ? static_cast<double>(fa) /
                                        static_cast<double>(fb)
                                  : 0.0)});
  t.print();

  std::printf("\nrepeat masking: %s repetitive k-mers (threshold auto), "
              "%s bases masked\n",
              util::fmt_count(pre.stats.repetitive_kmers).c_str(),
              util::fmt_count(pre.stats.masked_bases).c_str());
  std::printf("vector trimmed: %s bases; quality trimmed: %s bases\n",
              util::fmt_count(pre.stats.vector_trimmed_bases).c_str(),
              util::fmt_count(pre.stats.quality_trimmed_bases).c_str());
  std::printf("discarded: %s too short, %s mostly masked\n",
              util::fmt_count(pre.stats.discarded_short).c_str(),
              util::fmt_count(pre.stats.discarded_masked).c_str());
  std::printf(
      "\nexpected shape (paper Table 2): WGS/BAC shotgun fragments lose "
      "most of\ntheir number to repeat masking; MF/HC gene-enriched "
      "fragments survive.\n");
  return 0;
}
