// Reproduces the paper's Section 9.1 masking ablation: clustering the same
// WGS data with and without repeat masking.
//
// Paper: with masking, clustering took 3.1 h and the largest cluster held
// 6.76% of the fragments; without masking it took 24 h (~8x) "due to the
// large number of pairwise alignments forced by the repeats" and almost
// 50% of the fragments collapsed into one giant cluster.
//
//   ./ablation_masking --bp 600000 --ranks 4
#include "bench_util.hpp"
#include "core/parallel_cluster.hpp"

using namespace pgasm;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t bp = flags.get_u64("bp", 500'000);
  const int ranks = static_cast<int>(flags.get_i64("ranks", 4));
  const std::uint64_t seed = flags.get_u64("seed", 7);
  const double flags_min_identity = flags.get_double("min-identity", 0.95);
  flags.finish();

  bench::print_header(
      "Section 9.1 ablation — clustering with vs without repeat masking",
      "paper: 3.1h vs 24h on 1024 nodes; largest cluster 6.76% vs ~50%");

  // Genome with two repeat regimes, as in real WGS targets:
  //  * an old, diverged family (pairwise ~16% divergence): its promising
  //    pairs *fail* the identity test, so without masking they are aligned
  //    over and over — the paper's wasted-work explosion;
  //  * a young, near-identical family: its pairs pass, gluing unrelated
  //    regions into the giant cluster.
  const std::uint64_t genome_len =
      static_cast<std::uint64_t>(static_cast<double>(bp) / 8.8);
  sim::GenomeParams gp;
  gp.length = genome_len;
  gp.seed = seed;
  gp.gene_fraction = 0.2;
  gp.unclonable_fraction = 0.04;
  // High copy count matters: unmasked pair volume grows ~quadratically in
  // the copy number (paper Section 2), and failing alignments never merge
  // clusters, so the work is all wasted.
  sim::RepeatFamilyParams old_fam{.element_length = 600, .copies = 0,
                                  .divergence = 0.05};
  old_fam.copies = static_cast<std::uint32_t>(genome_len * 35 / 100 / 600);
  sim::RepeatFamilyParams young_fam{.element_length = 700, .copies = 0,
                                    .divergence = 0.005};
  young_fam.copies = static_cast<std::uint32_t>(genome_len / 14 / 700);
  gp.repeat_families = {old_fam, young_fam};
  const auto genome = sim::simulate_genome(gp);
  util::Prng rng(seed + 1);
  sim::ReadSet rs;
  sim::ReadParams rp;
  rp.len_mean = 550;
  rp.len_spread = 120;
  sim::sample_wgs(rs, genome, 8.8, rp, rng);
  auto params = bench::bench_cluster_params();
  // Slightly stricter acceptance, as the per-cluster assembler would use:
  // diverged-repeat overlaps must *fail*, which is exactly what turns
  // unmasked repeats into wasted alignment work instead of merges.
  params.overlap.min_identity = flags_min_identity;
  params.overlap.min_overlap = 50;

  util::Table t({"masking", "fragments", "pairs generated", "pairs aligned",
                 "cluster modeled (s)", "largest cluster", "clusters"});
  double masked_time = 0, unmasked_time = 0;
  for (const bool mask : {true, false}) {
    preprocess::PreprocessParams pp;
    pp.mask_repeats = mask;
    pp.repeat.sample_fraction = 0.15;
    const auto pre =
        preprocess::preprocess(rs.store, sim::vector_library(), pp);
    const auto result = core::cluster_parallel(pre.store, params, ranks);
    const auto summary = pipeline::summarize_clusters(result.clusters);
    const double time = result.stats.cluster_modeled_seconds;
    (mask ? masked_time : unmasked_time) = time;
    t.add_row({mask ? "on" : "OFF", util::fmt_count(pre.store.size()),
               util::fmt_count(result.stats.pairs_generated),
               util::fmt_count(result.stats.pairs_aligned),
               util::fmt_double(time, 4),
               util::fmt_percent(summary.max_cluster_fraction, 2) + " of input",
               util::fmt_count(summary.num_clusters)});
  }
  t.print();
  if (masked_time > 0) {
    std::printf("\nslowdown without masking: %.1fx (paper: ~7.7x)\n",
                unmasked_time / masked_time);
  }
  std::printf(
      "expected shape (paper §9.1): without masking the alignment workload "
      "explodes\nand a giant cluster absorbs a large share of the "
      "fragments.\n");
  return 0;
}
