#!/usr/bin/env bash
# Repository CI gate, runnable locally:
#
#   scripts/ci.sh           # tier-1 verify + fault suite + TSan obs/vmpi
#   scripts/ci.sh tier1     # just the tier-1 build + full ctest
#   scripts/ci.sh faults    # just the fault-injection suite
#   scripts/ci.sh tsan      # just the TSan build of the concurrent layers
#
# Build trees: build/ (tier-1) and build-tsan/ (PGASM_SANITIZE=thread).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGE=${1:-all}

tier1() {
  echo "== tier-1: configure + build + full test suite =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
}

faults() {
  echo "== fault-injection suite (ctest -L faults) =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -L faults)
}

tsan() {
  echo "== TSan: obs + vmpi concurrency tests =="
  cmake -B build-tsan -S . -DPGASM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_obs test_vmpi
  (cd build-tsan && ctest --output-on-failure -R 'Registry|Tracer|Histogram|Vmpi')
}

case "$STAGE" in
  tier1) tier1 ;;
  faults) faults ;;
  tsan) tsan ;;
  all)
    tier1
    faults
    tsan
    ;;
  *)
    echo "usage: scripts/ci.sh [tier1|faults|tsan|all]" >&2
    exit 2
    ;;
esac

echo "CI OK"
