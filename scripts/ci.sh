#!/usr/bin/env bash
# Repository CI gate, runnable locally:
#
#   scripts/ci.sh            # lint + tier-1 + faults + chaos + TSan + ASan
#                            # + UBSan + fuzz
#   scripts/ci.sh tier1      # just the tier-1 build + full ctest
#   scripts/ci.sh faults     # just the fault-injection suite
#   scripts/ci.sh chaos-smoke # bounded deterministic chaos campaign: seeded
#                            # full-pipeline fault schedules must converge
#                            # to bit-identical contigs
#   scripts/ci.sh tsan       # just the TSan build of the concurrent layers
#   scripts/ci.sh asan       # just the ASan build of the align + core suites
#   scripts/ci.sh lint       # pgasm-lint + protocol_check + strict-warnings
#                            # build (+ clang tools when installed)
#   scripts/ci.sh determ     # pgasm-determcheck static determinism analysis
#                            # (W016-W019): src/ must carry zero
#                            # nondeterminism findings; JSON report lands in
#                            # build/determ_findings.json
#   scripts/ci.sh tsafety    # clang -Wthread-safety capability analysis of
#                            # the PGASM_* lock annotations (clang only;
#                            # loud skip when no clang is installed)
#   scripts/ci.sh ubsan      # UBSan build + full ctest under it
#   scripts/ci.sh fuzz-smoke # bounded deterministic fuzz run (UBSan tree)
#   scripts/ci.sh perf-smoke # 4-rank pipeline run with tracing: assert 100%
#                            # causal stitch coverage, perf_diff self-vs-self
#                            # passes, and a synthetically slowed run fails
#   scripts/ci.sh proc-smoke # multi-process transport: quickstart contigs
#                            # bit-identical to thread, merged trace stitches
#                            # 100%, parallel suites pass with proc default
#   scripts/ci.sh verify     # exhaustive checkers: pgasm-model explores the
#                            # master/worker protocol state space (clean
#                            # sweep + every seeded bug caught) and
#                            # pgasm-ringcheck enumerates shm-ring
#                            # interleavings (clean + every weakened
#                            # memory-order site caught)
#
# Build trees: build/ (tier-1), build-tsan/ (PGASM_SANITIZE=thread),
# build-asan/ (PGASM_SANITIZE=address), build-lint/ (PGASM_EXTRA_WARNINGS +
# PGASM_WERROR), build-tsafety/ (clang + PGASM_THREAD_SAFETY) and
# build-ubsan/ (PGASM_SANITIZE=undefined).
#
# Every stage runs through run_stage, which prints the elapsed wall time on
# completion so slow stages are visible at a glance in CI logs.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGE=${1:-all}

run_stage() {
  local name=$1 t0=$SECONDS
  "$name"
  echo "== stage $name done in $((SECONDS - t0))s =="
}

tier1() {
  echo "== tier-1: configure + build + full test suite =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
}

faults() {
  echo "== fault-injection suite (ctest -L faults) =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -L faults)
}

chaos_smoke() {
  echo "== chaos-smoke: seeded fault schedules, contigs must be identical =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target chaos_pipeline
  ./build/tools/chaos/chaos_pipeline --seeds "${CHAOS_SEEDS:-12}"
}

tsan() {
  echo "== TSan: obs + vmpi concurrency tests + fault-injection suite =="
  cmake -B build-tsan -S . -DPGASM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" \
    --target test_obs test_vmpi test_fault_tolerance test_recovery \
    chaos_pipeline
  (cd build-tsan && ctest --output-on-failure -R 'Registry|Tracer|Histogram|Vmpi')
  # Recovery reassigns work across surviving rank threads; TSan over the
  # whole faults label is the data-race gate on those handoff paths.
  (cd build-tsan && ctest --output-on-failure -L faults -j "$JOBS")
}

asan() {
  echo "== ASan: alignment hot path + cluster engine tests =="
  # The overlap workspace hands out grow-only dirty buffers and the banded
  # kernel runs a guard-free inner loop; ASan is the check that every read
  # and write stays inside the live extents.
  cmake -B build-asan -S . -DPGASM_SANITIZE=address
  cmake --build build-asan -j "$JOBS" \
    --target test_align test_workspace test_linear_space test_cluster
  (cd build-asan && ctest --output-on-failure \
    -R 'Align|Overlap|Banded|Workspace|OverlapEngine|ValidateParams|LinearSpace|Hirschberg|Cluster')
}

lint() {
  echo "== lint: pgasm-lint project invariants (W001-W015) =="
  python3 tools/lint/pgasm_lint.py

  echo "== lint: protocol exhaustiveness checker =="
  # Compiling protocol_check already enforces the structural static_asserts
  # (one kProtocol row per kind, distinct tags, terminate reachable);
  # running it adds the source cross-checks with readable diagnostics.
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target protocol_check
  ./build/tools/protocol_check/protocol_check "$(pwd)"

  echo "== lint: strict-warnings build (PGASM_EXTRA_WARNINGS + Werror) =="
  # Production code only: the strict set (notably -Wnull-dereference under
  # inlining) false-positives inside gtest/benchmark headers, so tests and
  # benches build with the regular warning set in the tier-1 stage instead.
  cmake -B build-lint -S . -DPGASM_EXTRA_WARNINGS=ON -DPGASM_WERROR=ON
  cmake --build build-lint -j "$JOBS" --target \
    pgasm_util pgasm_obs pgasm_vmpi pgasm_seq pgasm_align pgasm_gst \
    pgasm_core pgasm_preprocess pgasm_sim pgasm_olc pgasm_pipeline

  # The clang tools are optional equipment: run them when installed, note
  # the skip when not. pgasm-lint and the strict-warnings leg above are the
  # always-on half of the gate; .clang-tidy/.clang-format keep the clang
  # half reproducible wherever the tools exist.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== lint: clang-tidy over src/ =="
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p build-lint "src/.*\.cpp$"
    else
      find src -name '*.cpp' -print0 |
        xargs -0 -n1 -P "$JOBS" clang-tidy -quiet -p build-lint
    fi
  else
    echo "-- clang-tidy not installed; skipping (gcc strict-warnings leg ran)"
  fi
  if command -v clang-format >/dev/null 2>&1; then
    echo "== lint: clang-format check =="
    find src tests tools bench examples \
      \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
      xargs -0 clang-format --dry-run --Werror
  else
    echo "-- clang-format not installed; skipping format check"
  fi
}

determ() {
  echo "== determ: pgasm-determcheck determinism invariants (W016-W019) =="
  # The bit-identical-contigs invariant is proved dynamically by
  # test_determinism and chaos-smoke; this stage is the static half — no
  # source of nondeterminism (hash-order iteration, pointer identity, float
  # fold order, unseeded entropy) may reach an output-affecting sink.
  mkdir -p build
  if ! python3 tools/determ/pgasm_determcheck.py --format=json \
      > build/determ_findings.json; then
    echo "!! determinism findings (build/determ_findings.json):" >&2
    python3 tools/determ/pgasm_determcheck.py >&2 || true
    return 1
  fi
  python3 - <<'PY'
import json
doc = json.load(open("build/determ_findings.json"))
assert doc["count"] == 0 and doc["findings"] == [], doc
print("-- determ: clean (%d checks, 0 findings)" % len(doc["checks"]))
PY
}

tsafety() {
  echo "== tsafety: clang -Wthread-safety capability analysis =="
  # The PGASM_* annotations (util/thread_annotations.hpp) compile to
  # nothing under GCC; only clang's capability analysis actually checks
  # them. Find a clang to build with, or skip LOUDLY — a silent pass here
  # would look like the analysis ran when it never did.
  local cxx=""
  for cand in clang++ clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      cxx=$cand
      break
    fi
  done
  if [[ -z "$cxx" ]]; then
    echo "!! tsafety SKIPPED: no clang++ on PATH — the PGASM_GUARDED_BY /" >&2
    echo "!! PGASM_REQUIRES annotations were NOT verified this run. The" >&2
    echo "!! lexer half (pgasm-lint W007/W010) still gates lock hygiene." >&2
    return 0
  fi
  cmake -B build-tsafety -S . \
    -DCMAKE_CXX_COMPILER="$cxx" -DPGASM_THREAD_SAFETY=ON -DPGASM_WERROR=ON
  # Library targets only: the annotated locks all live in production code.
  cmake --build build-tsafety -j "$JOBS" --target \
    pgasm_util pgasm_obs pgasm_vmpi pgasm_seq pgasm_align pgasm_gst \
    pgasm_core pgasm_preprocess pgasm_sim pgasm_olc pgasm_pipeline
}

ubsan() {
  echo "== UBSan: full test suite under -fsanitize=undefined =="
  cmake -B build-ubsan -S . -DPGASM_SANITIZE=undefined
  cmake --build build-ubsan -j "$JOBS"
  (cd build-ubsan && ctest --output-on-failure -j "$JOBS" -LE fuzz)
}

fuzz_smoke() {
  echo "== fuzz-smoke: bounded deterministic fuzz run (UBSan tree) =="
  cmake -B build-ubsan -S . -DPGASM_SANITIZE=undefined
  cmake --build build-ubsan -j "$JOBS" \
    --target fuzz_wire fuzz_fasta fuzz_fastq fuzz_checkpoint fuzz_manifest
  (cd build-ubsan && ctest --output-on-failure -L fuzz)
}

perf_smoke() {
  echo "== perf-smoke: trace stitching + perf regression gate =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target quickstart perf_diff
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  # Two identical small runs. --trace-cap is sized so the rings never
  # overflow: dropped events would turn coverage into a lower bound and the
  # stitch check below is deliberately strict about that.
  ./build/examples/quickstart --ranks 4 --seed 7 --trace-cap 65536 \
    --obs-out "$tmp/obs-a" --out "$tmp/contigs-a.fa" 2>/dev/null
  ./build/examples/quickstart --ranks 4 --seed 7 --trace-cap 65536 \
    --obs-out "$tmp/obs-b" --out "$tmp/contigs-b.fa" 2>/dev/null

  echo "-- stitch coverage must be 100% with zero dropped events"
  ./build/tools/perf/perf_diff --check-stitch "$tmp/obs-a"
  ./build/tools/perf/perf_diff --check-stitch "$tmp/obs-b"

  echo "-- perf_diff run-vs-run must pass (noise below thresholds)"
  ./build/tools/perf/perf_diff "$tmp/obs-a" "$tmp/obs-b"

  echo "-- perf_diff must flag a synthetically slowed run"
  if ./build/tools/perf/perf_diff --scale-new 2.5 "$tmp/obs-a" "$tmp/obs-a"; then
    echo "!! perf_diff accepted a 2.5x slowdown — gate is not arming" >&2
    return 1
  fi
  echo "-- slowed run rejected as expected"
}

proc_smoke() {
  echo "== proc-smoke: multi-process transport end to end =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  local tmp
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' RETURN
  echo "-- quickstart under both transports: contigs must be bit-identical"
  ./build/examples/quickstart --ranks 4 --seed 7 \
    --out "$tmp/thread.fa" 2>/dev/null
  ./build/examples/quickstart --ranks 4 --seed 7 --transport proc \
    --trace-cap 65536 --obs-out "$tmp/obs-proc" --out "$tmp/proc.fa" \
    2>/dev/null
  cmp "$tmp/thread.fa" "$tmp/proc.fa"
  echo "-- contigs identical across transports"

  echo "-- merged per-process trace must stitch 100%"
  # The proc run's trace is assembled from the parent ring plus each
  # child's exit blob (epoch-aligned); full stitch coverage proves no
  # cross-process send/recv edge was lost in the merge.
  ./build/tools/perf/perf_diff --check-stitch "$tmp/obs-proc"

  echo "-- parallel suites with the proc backend as the default"
  # PGASM_TRANSPORT only binds call sites that select their transport by
  # name ("" defers to the environment) — the clustering/pipeline protocol
  # stack. Suites that build the thread transport explicitly (the mailbox
  # semantics tests) keep their own backend by design.
  (cd build &&
    PGASM_TRANSPORT=proc ctest --output-on-failure -L parallel -j "$JOBS")
}

verify() {
  echo "== verify: exhaustive protocol + memory-model checking =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target pgasm-model pgasm-ringcheck

  echo "-- pgasm-model: clean protocol must verify exhaustively, N=1..3"
  # drops=2/crashes=1 turns on the full adversary (lossy network plus a
  # worker death) at every size the state space stays exhaustible.
  for n in 1 2 3; do
    ./build/tools/verify/pgasm-model --workers="$n" --drops=2 --crashes=1
  done

  echo "-- pgasm-model: every seeded protocol bug must be caught (exit 1)"
  for bug in no-retransmit no-cached-reply no-death-terminate \
             no-park-reply undeclared-recv no-final-abort; do
    if ./build/tools/verify/pgasm-model --bug="$bug" >/dev/null; then
      echo "!! pgasm-model missed seeded bug: $bug" >&2
      return 1
    fi
    echo "   caught: $bug"
  done

  echo "-- pgasm-ringcheck: clean ring must pass every interleaving"
  ./build/tools/verify/pgasm-ringcheck

  echo "-- pgasm-ringcheck: every weakened order site must be caught (exit 1)"
  for site in push-load-head push-store-tail pop-load-tail pop-store-head; do
    if ./build/tools/verify/pgasm-ringcheck --mutate="$site" >/dev/null; then
      echo "!! pgasm-ringcheck missed weakened site: $site" >&2
      return 1
    fi
    echo "   caught: $site"
  done

  echo "-- --format=json must emit the pgasm-lint finding schema"
  local out
  out=$(./build/tools/verify/pgasm-model --workers=1 --drops=0 --crashes=0 \
    --format=json)
  python3 - "$out" <<'PY'
import json, sys
doc = json.loads(sys.argv[1])
assert doc["count"] == 0 and doc["findings"] == [], doc
assert "checks" in doc and "root" in doc and doc["version"] == 1, doc
PY
  out=$(./build/tools/verify/pgasm-ringcheck --mutate=push-load-head \
    --format=json) && { echo "!! json mutation run exited 0" >&2; return 1; }
  python3 - "$out" <<'PY'
import json, sys
doc = json.loads(sys.argv[1])
assert doc["count"] == 1, doc
f = doc["findings"][0]
assert f["id"].startswith("PR-") and f["slug"] == "data-race", f
PY
  echo "-- json schema holds"
}

case "$STAGE" in
  tier1) run_stage tier1 ;;
  faults) run_stage faults ;;
  chaos-smoke) run_stage chaos_smoke ;;
  tsan) run_stage tsan ;;
  asan) run_stage asan ;;
  lint) run_stage lint ;;
  determ) run_stage determ ;;
  tsafety) run_stage tsafety ;;
  ubsan) run_stage ubsan ;;
  fuzz-smoke) run_stage fuzz_smoke ;;
  perf-smoke) run_stage perf_smoke ;;
  proc-smoke) run_stage proc_smoke ;;
  verify) run_stage verify ;;
  all)
    run_stage lint
    run_stage determ
    run_stage tsafety
    run_stage tier1
    run_stage verify
    run_stage faults
    run_stage chaos_smoke
    run_stage tsan
    run_stage asan
    run_stage ubsan
    run_stage fuzz_smoke
    run_stage perf_smoke
    run_stage proc_smoke
    ;;
  *)
    echo "usage: scripts/ci.sh [lint|determ|tsafety|tier1|faults|chaos-smoke|tsan|asan|ubsan|fuzz-smoke|perf-smoke|proc-smoke|verify|all]" >&2
    exit 2
    ;;
esac

echo "CI OK"
