#!/usr/bin/env bash
# Repository CI gate, runnable locally:
#
#   scripts/ci.sh           # tier-1 verify + fault suite + TSan + ASan
#   scripts/ci.sh tier1     # just the tier-1 build + full ctest
#   scripts/ci.sh faults    # just the fault-injection suite
#   scripts/ci.sh tsan     # just the TSan build of the concurrent layers
#   scripts/ci.sh asan     # just the ASan build of the align + core suites
#
# Build trees: build/ (tier-1), build-tsan/ (PGASM_SANITIZE=thread) and
# build-asan/ (PGASM_SANITIZE=address).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGE=${1:-all}

tier1() {
  echo "== tier-1: configure + build + full test suite =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
}

faults() {
  echo "== fault-injection suite (ctest -L faults) =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -L faults)
}

tsan() {
  echo "== TSan: obs + vmpi concurrency tests =="
  cmake -B build-tsan -S . -DPGASM_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target test_obs test_vmpi
  (cd build-tsan && ctest --output-on-failure -R 'Registry|Tracer|Histogram|Vmpi')
}

asan() {
  echo "== ASan: alignment hot path + cluster engine tests =="
  # The overlap workspace hands out grow-only dirty buffers and the banded
  # kernel runs a guard-free inner loop; ASan is the check that every read
  # and write stays inside the live extents.
  cmake -B build-asan -S . -DPGASM_SANITIZE=address
  cmake --build build-asan -j "$JOBS" \
    --target test_align test_workspace test_linear_space test_cluster
  (cd build-asan && ctest --output-on-failure \
    -R 'Align|Overlap|Banded|Workspace|OverlapEngine|ValidateParams|LinearSpace|Hirschberg|Cluster')
}

case "$STAGE" in
  tier1) tier1 ;;
  faults) faults ;;
  tsan) tsan ;;
  asan) asan ;;
  all)
    tier1
    faults
    tsan
    asan
    ;;
  *)
    echo "usage: scripts/ci.sh [tier1|faults|tsan|asan|all]" >&2
    exit 2
    ;;
esac

echo "CI OK"
