#!/usr/bin/env bash
# Refresh the committed perf baselines under bench/baselines/.
#
#   scripts/bench_baseline.sh            # build + run the baseline benches
#
# Runs the three benches that perf_diff gates on — align_throughput (the
# alignment hot path), fig5_gst_scaling (parallel GST construction) and
# fig9_cluster_scaling (master-worker clustering) — at fixed seeds and
# fixed, deliberately small sizes, plus transport_probe (measured α/β for
# both vmpi transports, the numbers CostParams::calibrated() is derived
# from), then moves their BENCH_*.json into bench/baselines/. Commit the refreshed files together with the change
# that moved the numbers; compare a later run against them with
#
#   ./build/tools/perf/perf_diff bench/baselines/BENCH_<name>.json \
#       BENCH_<name>.json
#
# perf_diff collapses repeat points (same configuration) to their median
# and refuses to compare across build types, so run this from the same
# build configuration you will compare against (Release numbers vs Release
# numbers). The sizes below finish in a few minutes total on one node;
# they are baselines for regression *detection*, not paper-scale numbers
# (EXPERIMENTS.md covers those).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

cmake -B build -S .
cmake --build build -j "$JOBS" \
  --target align_throughput fig5_gst_scaling fig9_cluster_scaling \
  transport_probe

mkdir -p bench/baselines

# Run from the repo root (BenchJson stamps `git describe` from the cwd);
# fixed seeds; odd repeat counts so the median is a real sample.
./build/bench/align_throughput \
  --pairs 2000 --len 600 --overlap 120 --band 12 --reps 5 --seed 17
./build/bench/fig5_gst_scaling \
  --small 200000 --large 400000 --max-ranks 8 --seed 55
./build/bench/fig9_cluster_scaling \
  --small 150000 --large 300000 --max-ranks 8 --seed 99
# No seed: the probe measures wall-clock latency, not simulated work. Its
# points carry a "transport" field, so thread and proc never collapse into
# one perf_diff group.
./build/tools/transport_probe/transport_probe --iters 400

mv BENCH_align_throughput.json BENCH_fig5_gst_scaling.json \
  BENCH_fig9_cluster_scaling.json BENCH_transport_probe.json \
  bench/baselines/
echo "refreshed:"
ls -l bench/baselines/
