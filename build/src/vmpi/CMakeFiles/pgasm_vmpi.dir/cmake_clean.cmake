file(REMOVE_RECURSE
  "CMakeFiles/pgasm_vmpi.dir/cost_model.cpp.o"
  "CMakeFiles/pgasm_vmpi.dir/cost_model.cpp.o.d"
  "CMakeFiles/pgasm_vmpi.dir/runtime.cpp.o"
  "CMakeFiles/pgasm_vmpi.dir/runtime.cpp.o.d"
  "libpgasm_vmpi.a"
  "libpgasm_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
