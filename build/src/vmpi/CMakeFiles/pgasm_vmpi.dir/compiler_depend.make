# Empty compiler generated dependencies file for pgasm_vmpi.
# This may be replaced when dependencies are built.
