file(REMOVE_RECURSE
  "libpgasm_vmpi.a"
)
