file(REMOVE_RECURSE
  "libpgasm_pipeline.a"
)
