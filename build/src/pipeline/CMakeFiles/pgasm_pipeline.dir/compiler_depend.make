# Empty compiler generated dependencies file for pgasm_pipeline.
# This may be replaced when dependencies are built.
