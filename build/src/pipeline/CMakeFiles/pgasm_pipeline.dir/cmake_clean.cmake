file(REMOVE_RECURSE
  "CMakeFiles/pgasm_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/pgasm_pipeline.dir/pipeline.cpp.o.d"
  "CMakeFiles/pgasm_pipeline.dir/validation.cpp.o"
  "CMakeFiles/pgasm_pipeline.dir/validation.cpp.o.d"
  "libpgasm_pipeline.a"
  "libpgasm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
