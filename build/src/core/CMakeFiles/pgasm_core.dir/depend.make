# Empty dependencies file for pgasm_core.
# This may be replaced when dependencies are built.
