file(REMOVE_RECURSE
  "CMakeFiles/pgasm_core.dir/consistency.cpp.o"
  "CMakeFiles/pgasm_core.dir/consistency.cpp.o.d"
  "CMakeFiles/pgasm_core.dir/parallel_cluster.cpp.o"
  "CMakeFiles/pgasm_core.dir/parallel_cluster.cpp.o.d"
  "CMakeFiles/pgasm_core.dir/serial_cluster.cpp.o"
  "CMakeFiles/pgasm_core.dir/serial_cluster.cpp.o.d"
  "CMakeFiles/pgasm_core.dir/wire.cpp.o"
  "CMakeFiles/pgasm_core.dir/wire.cpp.o.d"
  "libpgasm_core.a"
  "libpgasm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
