file(REMOVE_RECURSE
  "libpgasm_core.a"
)
