# Empty compiler generated dependencies file for pgasm_olc.
# This may be replaced when dependencies are built.
