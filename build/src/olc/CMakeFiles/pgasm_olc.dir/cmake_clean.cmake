file(REMOVE_RECURSE
  "CMakeFiles/pgasm_olc.dir/assembler.cpp.o"
  "CMakeFiles/pgasm_olc.dir/assembler.cpp.o.d"
  "CMakeFiles/pgasm_olc.dir/layout.cpp.o"
  "CMakeFiles/pgasm_olc.dir/layout.cpp.o.d"
  "CMakeFiles/pgasm_olc.dir/scaffold.cpp.o"
  "CMakeFiles/pgasm_olc.dir/scaffold.cpp.o.d"
  "libpgasm_olc.a"
  "libpgasm_olc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_olc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
