file(REMOVE_RECURSE
  "libpgasm_olc.a"
)
