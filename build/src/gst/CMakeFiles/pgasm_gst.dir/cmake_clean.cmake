file(REMOVE_RECURSE
  "CMakeFiles/pgasm_gst.dir/lookup_filter.cpp.o"
  "CMakeFiles/pgasm_gst.dir/lookup_filter.cpp.o.d"
  "CMakeFiles/pgasm_gst.dir/pair_generator.cpp.o"
  "CMakeFiles/pgasm_gst.dir/pair_generator.cpp.o.d"
  "CMakeFiles/pgasm_gst.dir/parallel_build.cpp.o"
  "CMakeFiles/pgasm_gst.dir/parallel_build.cpp.o.d"
  "CMakeFiles/pgasm_gst.dir/suffix.cpp.o"
  "CMakeFiles/pgasm_gst.dir/suffix.cpp.o.d"
  "CMakeFiles/pgasm_gst.dir/suffix_tree.cpp.o"
  "CMakeFiles/pgasm_gst.dir/suffix_tree.cpp.o.d"
  "libpgasm_gst.a"
  "libpgasm_gst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_gst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
