
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gst/lookup_filter.cpp" "src/gst/CMakeFiles/pgasm_gst.dir/lookup_filter.cpp.o" "gcc" "src/gst/CMakeFiles/pgasm_gst.dir/lookup_filter.cpp.o.d"
  "/root/repo/src/gst/pair_generator.cpp" "src/gst/CMakeFiles/pgasm_gst.dir/pair_generator.cpp.o" "gcc" "src/gst/CMakeFiles/pgasm_gst.dir/pair_generator.cpp.o.d"
  "/root/repo/src/gst/parallel_build.cpp" "src/gst/CMakeFiles/pgasm_gst.dir/parallel_build.cpp.o" "gcc" "src/gst/CMakeFiles/pgasm_gst.dir/parallel_build.cpp.o.d"
  "/root/repo/src/gst/suffix.cpp" "src/gst/CMakeFiles/pgasm_gst.dir/suffix.cpp.o" "gcc" "src/gst/CMakeFiles/pgasm_gst.dir/suffix.cpp.o.d"
  "/root/repo/src/gst/suffix_tree.cpp" "src/gst/CMakeFiles/pgasm_gst.dir/suffix_tree.cpp.o" "gcc" "src/gst/CMakeFiles/pgasm_gst.dir/suffix_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pgasm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/pgasm_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
