# Empty compiler generated dependencies file for pgasm_gst.
# This may be replaced when dependencies are built.
