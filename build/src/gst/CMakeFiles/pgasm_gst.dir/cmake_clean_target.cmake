file(REMOVE_RECURSE
  "libpgasm_gst.a"
)
