# Empty compiler generated dependencies file for pgasm_sim.
# This may be replaced when dependencies are built.
