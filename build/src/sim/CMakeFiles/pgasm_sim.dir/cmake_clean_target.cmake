file(REMOVE_RECURSE
  "libpgasm_sim.a"
)
