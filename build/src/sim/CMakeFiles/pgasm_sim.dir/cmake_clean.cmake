file(REMOVE_RECURSE
  "CMakeFiles/pgasm_sim.dir/community.cpp.o"
  "CMakeFiles/pgasm_sim.dir/community.cpp.o.d"
  "CMakeFiles/pgasm_sim.dir/genome.cpp.o"
  "CMakeFiles/pgasm_sim.dir/genome.cpp.o.d"
  "CMakeFiles/pgasm_sim.dir/reads.cpp.o"
  "CMakeFiles/pgasm_sim.dir/reads.cpp.o.d"
  "libpgasm_sim.a"
  "libpgasm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
