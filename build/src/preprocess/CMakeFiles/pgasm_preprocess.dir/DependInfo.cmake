
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preprocess/preprocess.cpp" "src/preprocess/CMakeFiles/pgasm_preprocess.dir/preprocess.cpp.o" "gcc" "src/preprocess/CMakeFiles/pgasm_preprocess.dir/preprocess.cpp.o.d"
  "/root/repo/src/preprocess/repeat_masker.cpp" "src/preprocess/CMakeFiles/pgasm_preprocess.dir/repeat_masker.cpp.o" "gcc" "src/preprocess/CMakeFiles/pgasm_preprocess.dir/repeat_masker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pgasm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
