file(REMOVE_RECURSE
  "libpgasm_preprocess.a"
)
