# Empty dependencies file for pgasm_preprocess.
# This may be replaced when dependencies are built.
