file(REMOVE_RECURSE
  "CMakeFiles/pgasm_preprocess.dir/preprocess.cpp.o"
  "CMakeFiles/pgasm_preprocess.dir/preprocess.cpp.o.d"
  "CMakeFiles/pgasm_preprocess.dir/repeat_masker.cpp.o"
  "CMakeFiles/pgasm_preprocess.dir/repeat_masker.cpp.o.d"
  "libpgasm_preprocess.a"
  "libpgasm_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
