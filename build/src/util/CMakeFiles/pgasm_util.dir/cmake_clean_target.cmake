file(REMOVE_RECURSE
  "libpgasm_util.a"
)
