file(REMOVE_RECURSE
  "CMakeFiles/pgasm_util.dir/flags.cpp.o"
  "CMakeFiles/pgasm_util.dir/flags.cpp.o.d"
  "CMakeFiles/pgasm_util.dir/log.cpp.o"
  "CMakeFiles/pgasm_util.dir/log.cpp.o.d"
  "CMakeFiles/pgasm_util.dir/stats.cpp.o"
  "CMakeFiles/pgasm_util.dir/stats.cpp.o.d"
  "CMakeFiles/pgasm_util.dir/union_find.cpp.o"
  "CMakeFiles/pgasm_util.dir/union_find.cpp.o.d"
  "libpgasm_util.a"
  "libpgasm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
