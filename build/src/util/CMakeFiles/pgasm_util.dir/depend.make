# Empty dependencies file for pgasm_util.
# This may be replaced when dependencies are built.
