file(REMOVE_RECURSE
  "libpgasm_seq.a"
)
