# Empty dependencies file for pgasm_seq.
# This may be replaced when dependencies are built.
