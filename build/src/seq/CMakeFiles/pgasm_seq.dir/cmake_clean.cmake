file(REMOVE_RECURSE
  "CMakeFiles/pgasm_seq.dir/alphabet.cpp.o"
  "CMakeFiles/pgasm_seq.dir/alphabet.cpp.o.d"
  "CMakeFiles/pgasm_seq.dir/fasta.cpp.o"
  "CMakeFiles/pgasm_seq.dir/fasta.cpp.o.d"
  "CMakeFiles/pgasm_seq.dir/fastq.cpp.o"
  "CMakeFiles/pgasm_seq.dir/fastq.cpp.o.d"
  "CMakeFiles/pgasm_seq.dir/fragment_store.cpp.o"
  "CMakeFiles/pgasm_seq.dir/fragment_store.cpp.o.d"
  "libpgasm_seq.a"
  "libpgasm_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
