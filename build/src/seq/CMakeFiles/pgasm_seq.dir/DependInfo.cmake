
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alphabet.cpp" "src/seq/CMakeFiles/pgasm_seq.dir/alphabet.cpp.o" "gcc" "src/seq/CMakeFiles/pgasm_seq.dir/alphabet.cpp.o.d"
  "/root/repo/src/seq/fasta.cpp" "src/seq/CMakeFiles/pgasm_seq.dir/fasta.cpp.o" "gcc" "src/seq/CMakeFiles/pgasm_seq.dir/fasta.cpp.o.d"
  "/root/repo/src/seq/fastq.cpp" "src/seq/CMakeFiles/pgasm_seq.dir/fastq.cpp.o" "gcc" "src/seq/CMakeFiles/pgasm_seq.dir/fastq.cpp.o.d"
  "/root/repo/src/seq/fragment_store.cpp" "src/seq/CMakeFiles/pgasm_seq.dir/fragment_store.cpp.o" "gcc" "src/seq/CMakeFiles/pgasm_seq.dir/fragment_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pgasm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
