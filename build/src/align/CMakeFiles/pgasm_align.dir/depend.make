# Empty dependencies file for pgasm_align.
# This may be replaced when dependencies are built.
