file(REMOVE_RECURSE
  "libpgasm_align.a"
)
