file(REMOVE_RECURSE
  "CMakeFiles/pgasm_align.dir/linear_space.cpp.o"
  "CMakeFiles/pgasm_align.dir/linear_space.cpp.o.d"
  "CMakeFiles/pgasm_align.dir/overlap.cpp.o"
  "CMakeFiles/pgasm_align.dir/overlap.cpp.o.d"
  "CMakeFiles/pgasm_align.dir/pairwise.cpp.o"
  "CMakeFiles/pgasm_align.dir/pairwise.cpp.o.d"
  "libpgasm_align.a"
  "libpgasm_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasm_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
