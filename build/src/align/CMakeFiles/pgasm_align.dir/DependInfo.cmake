
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/linear_space.cpp" "src/align/CMakeFiles/pgasm_align.dir/linear_space.cpp.o" "gcc" "src/align/CMakeFiles/pgasm_align.dir/linear_space.cpp.o.d"
  "/root/repo/src/align/overlap.cpp" "src/align/CMakeFiles/pgasm_align.dir/overlap.cpp.o" "gcc" "src/align/CMakeFiles/pgasm_align.dir/overlap.cpp.o.d"
  "/root/repo/src/align/pairwise.cpp" "src/align/CMakeFiles/pgasm_align.dir/pairwise.cpp.o" "gcc" "src/align/CMakeFiles/pgasm_align.dir/pairwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pgasm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
