# Empty compiler generated dependencies file for test_scaffold.
# This may be replaced when dependencies are built.
