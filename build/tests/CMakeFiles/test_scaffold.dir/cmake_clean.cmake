file(REMOVE_RECURSE
  "CMakeFiles/test_scaffold.dir/test_scaffold.cpp.o"
  "CMakeFiles/test_scaffold.dir/test_scaffold.cpp.o.d"
  "test_scaffold"
  "test_scaffold.pdb"
  "test_scaffold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaffold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
