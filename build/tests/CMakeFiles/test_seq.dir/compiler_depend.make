# Empty compiler generated dependencies file for test_seq.
# This may be replaced when dependencies are built.
