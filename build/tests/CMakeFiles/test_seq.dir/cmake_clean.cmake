file(REMOVE_RECURSE
  "CMakeFiles/test_seq.dir/test_seq.cpp.o"
  "CMakeFiles/test_seq.dir/test_seq.cpp.o.d"
  "test_seq"
  "test_seq.pdb"
  "test_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
