
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/pgasm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pgasm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/pgasm_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/olc/CMakeFiles/pgasm_olc.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pgasm_align.dir/DependInfo.cmake"
  "/root/repo/build/src/gst/CMakeFiles/pgasm_gst.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/pgasm_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/pgasm_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
