# Empty dependencies file for test_parallel_gst.
# This may be replaced when dependencies are built.
