file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_gst.dir/test_parallel_gst.cpp.o"
  "CMakeFiles/test_parallel_gst.dir/test_parallel_gst.cpp.o.d"
  "test_parallel_gst"
  "test_parallel_gst.pdb"
  "test_parallel_gst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_gst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
