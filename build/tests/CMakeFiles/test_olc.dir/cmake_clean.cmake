file(REMOVE_RECURSE
  "CMakeFiles/test_olc.dir/test_olc.cpp.o"
  "CMakeFiles/test_olc.dir/test_olc.cpp.o.d"
  "test_olc"
  "test_olc.pdb"
  "test_olc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_olc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
