# Empty compiler generated dependencies file for test_olc.
# This may be replaced when dependencies are built.
