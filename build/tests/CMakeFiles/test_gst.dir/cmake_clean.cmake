file(REMOVE_RECURSE
  "CMakeFiles/test_gst.dir/test_gst.cpp.o"
  "CMakeFiles/test_gst.dir/test_gst.cpp.o.d"
  "test_gst"
  "test_gst.pdb"
  "test_gst[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
