# Empty compiler generated dependencies file for test_gst.
# This may be replaced when dependencies are built.
