# Empty compiler generated dependencies file for test_preprocess.
# This may be replaced when dependencies are built.
