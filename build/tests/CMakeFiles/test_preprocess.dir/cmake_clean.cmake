file(REMOVE_RECURSE
  "CMakeFiles/test_preprocess.dir/test_preprocess.cpp.o"
  "CMakeFiles/test_preprocess.dir/test_preprocess.cpp.o.d"
  "test_preprocess"
  "test_preprocess.pdb"
  "test_preprocess[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
