file(REMOVE_RECURSE
  "CMakeFiles/test_vmpi.dir/test_vmpi.cpp.o"
  "CMakeFiles/test_vmpi.dir/test_vmpi.cpp.o.d"
  "test_vmpi"
  "test_vmpi.pdb"
  "test_vmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
