# Empty compiler generated dependencies file for test_vmpi.
# This may be replaced when dependencies are built.
