# Empty dependencies file for test_linear_space.
# This may be replaced when dependencies are built.
