file(REMOVE_RECURSE
  "CMakeFiles/test_linear_space.dir/test_linear_space.cpp.o"
  "CMakeFiles/test_linear_space.dir/test_linear_space.cpp.o.d"
  "test_linear_space"
  "test_linear_space.pdb"
  "test_linear_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
