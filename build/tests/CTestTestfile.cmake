# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_vmpi[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_gst[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_gst[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_scaffold[1]_include.cmake")
include("/root/repo/build/tests/test_linear_space[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_preprocess[1]_include.cmake")
include("/root/repo/build/tests/test_olc[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
