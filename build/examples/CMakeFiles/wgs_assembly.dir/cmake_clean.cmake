file(REMOVE_RECURSE
  "CMakeFiles/wgs_assembly.dir/wgs_assembly.cpp.o"
  "CMakeFiles/wgs_assembly.dir/wgs_assembly.cpp.o.d"
  "wgs_assembly"
  "wgs_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgs_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
