# Empty compiler generated dependencies file for wgs_assembly.
# This may be replaced when dependencies are built.
