file(REMOVE_RECURSE
  "CMakeFiles/maize_pipeline.dir/maize_pipeline.cpp.o"
  "CMakeFiles/maize_pipeline.dir/maize_pipeline.cpp.o.d"
  "maize_pipeline"
  "maize_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maize_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
