# Empty compiler generated dependencies file for maize_pipeline.
# This may be replaced when dependencies are built.
