file(REMOVE_RECURSE
  "CMakeFiles/metagenome.dir/metagenome.cpp.o"
  "CMakeFiles/metagenome.dir/metagenome.cpp.o.d"
  "metagenome"
  "metagenome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
