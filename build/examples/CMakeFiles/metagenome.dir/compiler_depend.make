# Empty compiler generated dependencies file for metagenome.
# This may be replaced when dependencies are built.
