# Empty compiler generated dependencies file for scaffolding.
# This may be replaced when dependencies are built.
