file(REMOVE_RECURSE
  "CMakeFiles/scaffolding.dir/scaffolding.cpp.o"
  "CMakeFiles/scaffolding.dir/scaffolding.cpp.o.d"
  "scaffolding"
  "scaffolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
