file(REMOVE_RECURSE
  "CMakeFiles/fig9_cluster_scaling.dir/fig9_cluster_scaling.cpp.o"
  "CMakeFiles/fig9_cluster_scaling.dir/fig9_cluster_scaling.cpp.o.d"
  "fig9_cluster_scaling"
  "fig9_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
