# Empty dependencies file for sec9_validation.
# This may be replaced when dependencies are built.
