file(REMOVE_RECURSE
  "CMakeFiles/sec9_validation.dir/sec9_validation.cpp.o"
  "CMakeFiles/sec9_validation.dir/sec9_validation.cpp.o.d"
  "sec9_validation"
  "sec9_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
