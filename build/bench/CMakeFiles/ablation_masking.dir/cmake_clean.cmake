file(REMOVE_RECURSE
  "CMakeFiles/ablation_masking.dir/ablation_masking.cpp.o"
  "CMakeFiles/ablation_masking.dir/ablation_masking.cpp.o.d"
  "ablation_masking"
  "ablation_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
