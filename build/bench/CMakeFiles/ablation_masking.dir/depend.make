# Empty dependencies file for ablation_masking.
# This may be replaced when dependencies are built.
