file(REMOVE_RECURSE
  "CMakeFiles/sec8_maize_assembly.dir/sec8_maize_assembly.cpp.o"
  "CMakeFiles/sec8_maize_assembly.dir/sec8_maize_assembly.cpp.o.d"
  "sec8_maize_assembly"
  "sec8_maize_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec8_maize_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
