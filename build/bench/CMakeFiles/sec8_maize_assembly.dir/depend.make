# Empty dependencies file for sec8_maize_assembly.
# This may be replaced when dependencies are built.
