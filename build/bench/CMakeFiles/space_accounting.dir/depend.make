# Empty dependencies file for space_accounting.
# This may be replaced when dependencies are built.
