file(REMOVE_RECURSE
  "CMakeFiles/space_accounting.dir/space_accounting.cpp.o"
  "CMakeFiles/space_accounting.dir/space_accounting.cpp.o.d"
  "space_accounting"
  "space_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
