# Empty dependencies file for table2_preprocessing.
# This may be replaced when dependencies are built.
