file(REMOVE_RECURSE
  "CMakeFiles/table2_preprocessing.dir/table2_preprocessing.cpp.o"
  "CMakeFiles/table2_preprocessing.dir/table2_preprocessing.cpp.o.d"
  "table2_preprocessing"
  "table2_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
