file(REMOVE_RECURSE
  "CMakeFiles/baseline_lookup_filter.dir/baseline_lookup_filter.cpp.o"
  "CMakeFiles/baseline_lookup_filter.dir/baseline_lookup_filter.cpp.o.d"
  "baseline_lookup_filter"
  "baseline_lookup_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_lookup_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
