# Empty compiler generated dependencies file for baseline_lookup_filter.
# This may be replaced when dependencies are built.
