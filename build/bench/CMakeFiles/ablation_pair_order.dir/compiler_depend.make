# Empty compiler generated dependencies file for ablation_pair_order.
# This may be replaced when dependencies are built.
