file(REMOVE_RECURSE
  "CMakeFiles/ablation_pair_order.dir/ablation_pair_order.cpp.o"
  "CMakeFiles/ablation_pair_order.dir/ablation_pair_order.cpp.o.d"
  "ablation_pair_order"
  "ablation_pair_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pair_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
