file(REMOVE_RECURSE
  "CMakeFiles/fig5_gst_scaling.dir/fig5_gst_scaling.cpp.o"
  "CMakeFiles/fig5_gst_scaling.dir/fig5_gst_scaling.cpp.o.d"
  "fig5_gst_scaling"
  "fig5_gst_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gst_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
