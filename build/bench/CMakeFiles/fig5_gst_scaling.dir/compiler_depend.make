# Empty compiler generated dependencies file for fig5_gst_scaling.
# This may be replaced when dependencies are built.
