# Empty compiler generated dependencies file for ablation_consistency.
# This may be replaced when dependencies are built.
