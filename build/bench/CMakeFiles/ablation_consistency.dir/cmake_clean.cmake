file(REMOVE_RECURSE
  "CMakeFiles/ablation_consistency.dir/ablation_consistency.cpp.o"
  "CMakeFiles/ablation_consistency.dir/ablation_consistency.cpp.o.d"
  "ablation_consistency"
  "ablation_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
