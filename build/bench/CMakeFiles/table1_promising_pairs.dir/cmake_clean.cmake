file(REMOVE_RECURSE
  "CMakeFiles/table1_promising_pairs.dir/table1_promising_pairs.cpp.o"
  "CMakeFiles/table1_promising_pairs.dir/table1_promising_pairs.cpp.o.d"
  "table1_promising_pairs"
  "table1_promising_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_promising_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
