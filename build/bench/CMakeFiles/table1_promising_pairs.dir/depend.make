# Empty dependencies file for table1_promising_pairs.
# This may be replaced when dependencies are built.
