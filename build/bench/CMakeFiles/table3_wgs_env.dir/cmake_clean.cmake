file(REMOVE_RECURSE
  "CMakeFiles/table3_wgs_env.dir/table3_wgs_env.cpp.o"
  "CMakeFiles/table3_wgs_env.dir/table3_wgs_env.cpp.o.d"
  "table3_wgs_env"
  "table3_wgs_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wgs_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
