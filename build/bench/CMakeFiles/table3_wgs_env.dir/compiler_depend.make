# Empty compiler generated dependencies file for table3_wgs_env.
# This may be replaced when dependencies are built.
