// Deterministic chaos campaign over the full pipeline (ISSUE: robustness).
//
// For each seed this driver builds a seeded read set, runs the pipeline
// once fault-free as the reference, then replays it with a seed-derived
// vmpi::FaultPlan (rank crashes, dropped and delayed user sends, plus
// probabilistic drop/delay noise) under the recovery supervisor with
// fault-tolerant GST construction enabled. The faulted run must finish and
// produce a bit-identical contig multiset; any divergence is a recovery
// bug and exits non-zero.
//
// Usage:
//   chaos_pipeline --seed 7            # one schedule (what ctest runs)
//   chaos_pipeline --seeds 25          # sweep seeds 1..25
//   chaos_pipeline --seed 7 --ranks 6 --verbose
//
// Determinism contract: a given (seed, ranks) pair always produces the
// same read set and the same FaultPlan, so failures replay exactly.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "sim/reads.hpp"
#include "util/prng.hpp"
#include "vmpi/runtime.hpp"

namespace {

namespace fs = std::filesystem;
using pgasm::pipeline::PipelineParams;
using pgasm::pipeline::PipelineResult;

struct Options {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 1;
  int ranks = 4;
  bool verbose = false;
  std::string transport;  ///< vmpi backend for the faulted run
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N | --seeds N] [--ranks R] "
               "[--transport thread|proc] [--verbose]\n"
               "  --seed N       run the single chaos schedule for seed N\n"
               "  --seeds N      sweep seeds 1..N\n"
               "  --ranks R      vmpi ranks for the parallel phases "
               "(default 4)\n"
               "  --transport T  backend for the faulted run; with proc the\n"
               "                 injected crash SIGKILLs a real child\n"
               "                 process (the reference run stays on thread,\n"
               "                 so convergence also checks cross-transport\n"
               "                 contig identity)\n",
               argv0);
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&]() -> std::uint64_t {
      if (i + 1 >= argc) usage(argv[0]);
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--seed") {
      opt.seed_lo = opt.seed_hi = next_u64();
    } else if (arg == "--seeds") {
      opt.seed_lo = 1;
      opt.seed_hi = next_u64();
    } else if (arg == "--ranks") {
      opt.ranks = static_cast<int>(next_u64());
    } else if (arg == "--transport") {
      if (i + 1 >= argc) usage(argv[0]);
      opt.transport = argv[++i];
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.seed_hi < opt.seed_lo || opt.ranks < 2) usage(argv[0]);
  try {
    pgasm::vmpi::resolve_transport(opt.transport);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s\n", ex.what());
    usage(argv[0]);
  }
  return opt;
}

pgasm::sim::ReadSet chaos_reads(std::uint64_t seed) {
  const auto g =
      pgasm::sim::simulate_genome(pgasm::sim::shotgun_like(6'000, seed));
  pgasm::util::Prng rng(seed * 0x9e3779b9ULL + 1);
  pgasm::sim::ReadSet rs;
  pgasm::sim::ReadParams rp;
  rp.len_mean = 300;
  rp.len_spread = 50;
  rp.errors.sub_rate = 0.005;
  pgasm::sim::sample_wgs(rs, g, 3.0, rp, rng);
  return rs;
}

PipelineParams chaos_params(int ranks) {
  PipelineParams p;
  p.pre.min_len = 80;
  p.cluster.psi = 14;
  p.cluster.overlap.min_overlap = 30;
  p.cluster.overlap.min_identity = 0.9;
  p.cluster.prefix_w = 4;
  p.cluster.batch_size = 16;
  p.cluster.worker_timeout = 0.25;
  p.cluster.worker_timeout_cap = 1.0;
  p.cluster.master_timeout = 1.0;
  p.assembly.psi = 16;
  p.assembly.overlap.min_overlap = 30;
  p.assembly.overlap.min_identity = 0.93;
  p.ranks = ranks;
  return p;
}

/// Seed-derived fault schedule: one rank crash, a couple of targeted
/// drops/delays on other ranks, and light probabilistic noise. Crash
/// indices stay small so they land inside the GST build or the early
/// master-worker exchange (where recovery has the most machinery to get
/// wrong); every third seed kills the master itself.
pgasm::vmpi::FaultPlan chaos_plan(std::uint64_t seed, int ranks) {
  pgasm::util::Prng rng(seed * 0x2545f4914f6cdd1dULL + 17);
  pgasm::vmpi::FaultPlan plan;
  const int crash_rank =
      seed % 3 == 0 ? 0 : 1 + static_cast<int>(rng.below(
                                  static_cast<std::uint64_t>(ranks - 1)));
  plan.crashes.push_back(
      {.rank = crash_rank,
       .at_send = 1 + rng.below(crash_rank == 0 ? 16 : 8)});
  for (int r = 0; r < ranks; ++r) {
    if (r == crash_rank) continue;
    if (rng.below(2) == 0)
      plan.drops.push_back({.rank = r, .at_send = 1 + rng.below(12)});
    if (rng.below(2) == 0)
      plan.delays.push_back(
          {.rank = r, .at_send = 1 + rng.below(12), .seconds = 0.05});
  }
  plan.seed = seed;
  plan.drop_prob = 0.01;
  plan.delay_prob = 0.02;
  plan.delay_seconds = 0.01;
  return plan;
}

/// Sorted multiset of contig consensus sequences: the bit-identical
/// comparison is over assembled output, independent of cluster label
/// numbering or assembly ordering.
std::vector<std::vector<pgasm::seq::Code>> contig_multiset(
    const PipelineResult& result) {
  std::vector<std::vector<pgasm::seq::Code>> all;
  for (const auto& asm_result : result.assemblies) {
    for (const auto& contig : asm_result.contigs) {
      all.push_back(contig.consensus);
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::string describe_plan(const pgasm::vmpi::FaultPlan& plan) {
  std::string s;
  for (const auto& c : plan.crashes)
    s += "crash(r" + std::to_string(c.rank) + "@" +
         std::to_string(c.at_send) + ") ";
  for (const auto& d : plan.drops)
    s += "drop(r" + std::to_string(d.rank) + "@" + std::to_string(d.at_send) +
         ") ";
  for (const auto& d : plan.delays)
    s += "delay(r" + std::to_string(d.rank) + "@" +
         std::to_string(d.at_send) + ") ";
  return s;
}

/// Run one seed's schedule; returns true when the faulted run converged to
/// the reference contigs.
bool run_seed(std::uint64_t seed, const Options& opt) {
  const auto rs = chaos_reads(seed);
  auto params = chaos_params(opt.ranks);
  params.cluster.fault_tolerant_gst = true;

  const auto reference =
      pgasm::pipeline::run_pipeline(rs.store, pgasm::sim::vector_library(),
                                    params);
  const auto want = contig_multiset(reference);

  const std::string dir =
      (fs::temp_directory_path() /
       ("pgasm_chaos_" + std::to_string(seed) + "_" +
        std::to_string(opt.ranks)))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto faulted = params;
  faulted.checkpoint_dir = dir;
  faulted.cluster.checkpoint_every_reports = 2;
  faulted.cluster.transport = opt.transport;
  faulted.faults = chaos_plan(seed, opt.ranks);
  if (opt.verbose) {
    std::fprintf(stderr, "[chaos] seed %llu plan: %s\n",
                 static_cast<unsigned long long>(seed),
                 describe_plan(faulted.faults).c_str());
  }

  bool ok = false;
  try {
    const auto result = pgasm::pipeline::run_pipeline(
        rs.store, pgasm::sim::vector_library(), faulted);
    const auto got = contig_multiset(result);
    if (got == want) {
      ok = true;
      std::fprintf(stderr,
                   "[chaos] seed %llu OK: %zu contigs identical "
                   "(retries=%llu gst_reassigned=%llu workers_lost=%llu)\n",
                   static_cast<unsigned long long>(seed), got.size(),
                   static_cast<unsigned long long>(
                       result.recovery.phase_retries),
                   static_cast<unsigned long long>(
                       result.cluster_stats.gst_buckets_reassigned),
                   static_cast<unsigned long long>(
                       result.cluster_stats.workers_lost));
    } else {
      std::fprintf(stderr,
                   "[chaos] seed %llu FAIL: contig multiset diverged "
                   "(reference %zu contigs, faulted %zu)\n",
                   static_cast<unsigned long long>(seed), want.size(),
                   got.size());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "[chaos] seed %llu FAIL: pipeline threw: %s\n",
                 static_cast<unsigned long long>(seed), ex.what());
  }
  fs::remove_all(dir);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  int failures = 0;
  for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
    if (!run_seed(seed, opt)) ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr, "[chaos] %d of %llu seeds FAILED\n", failures,
                 static_cast<unsigned long long>(opt.seed_hi - opt.seed_lo +
                                                 1));
    return 1;
  }
  std::fprintf(stderr, "[chaos] all %llu seeds converged\n",
               static_cast<unsigned long long>(opt.seed_hi - opt.seed_lo + 1));
  return 0;
}
