// perf_diff: compare two performance artifacts and exit nonzero on
// regression. The perf half of the CI gate (scripts/ci.sh perf-smoke).
//
//   perf_diff [options] <old> <new>
//       <old>/<new> are either obs output directories (written via
//       --obs-out / PipelineParams::obs_dir; their attribution.json is
//       compared) or BENCH_*.json files (bench/bench_util.hpp BenchJson).
//   perf_diff --check-stitch <obs-dir-or-attribution.json>
//       assert the trace analyzer stitched 100% of sends and dropped no
//       events; exits 1 otherwise.
//
// Options:
//   --rel <frac>            relative regression threshold (default 0.25:
//                           new must exceed old by >25% to count)
//   --floor-us <us>         absolute floor for obs-mode times (default
//                           20000us): changes smaller than this never fail
//   --floor <value>         absolute floor for bench-mode values (default
//                           0.05, i.e. 50ms for the *_s fields)
//   --scale-new <x>         multiply new-side values before comparing
//                           (exercises the gate: self-vs-self must fail
//                           once scaled)
//   --allow-meta-mismatch   compare BENCH files despite different
//                           build_type metadata
//
// Noise handling: bench points with identical configuration (identical
// non-float fields) are collapsed to their per-field median before
// comparison, and a regression needs to clear BOTH the relative threshold
// and the absolute floor. Fields are direction-classified by name: times
// (*_s, *_us, *_ms, *seconds*, *time*) regress upward, rates (*per_s*,
// *throughput*, *cups*) regress downward, anything else is reported but
// never fails the gate.
//
// Exit codes: 0 ok, 1 regression / failed stitch check, 2 usage or IO.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- minimal JSON ----------------------------------------------------------
// Self-contained recursive-descent parser for the subset our own emitters
// produce (objects, arrays, strings, numbers, bools, null). No external
// dependency, by design: this tool must build everywhere the repo builds.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  bool is_integer = false;  ///< source text had no '.' / exponent
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;  ///< insertion order kept

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double number_or(double fallback) const {
    return type == Type::kNumber ? num : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json* out, std::string* err) {
    skip_ws();
    if (!value(out)) {
      *err = "JSON parse error near offset " + std::to_string(i_);
      return false;
    }
    skip_ws();
    if (i_ != s_.size()) {
      *err = "trailing bytes after JSON value at offset " + std::to_string(i_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
      ++i_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  bool value(Json* out) {
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = Json::Type::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->type = Json::Type::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->type = Json::Type::kBool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->type = Json::Type::kNull;
      return literal("null");
    }
    return number(out);
  }
  bool string(std::string* out) {
    if (s_[i_] != '"') return false;
    ++i_;
    out->clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char e = s_[i_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) return false;
            // Our emitters only produce \u00xx control escapes; decode the
            // low byte and drop the (always-zero) high byte.
            const std::string hex = s_.substr(i_, 4);
            i_ += 4;
            *out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool number(Json* out) {
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    bool integer = true;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++i_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integer = c != '.' && c != 'e' && c != 'E' ? integer : false;
        ++i_;
      } else {
        break;
      }
    }
    if (i_ == start) return false;
    out->type = Json::Type::kNumber;
    out->is_integer = integer;
    out->num = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }
  bool array(Json* out) {
    out->type = Json::Type::kArray;
    ++i_;  // '['
    skip_ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    for (;;) {
      Json v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        skip_ws();
        continue;
      }
      if (s_[i_] == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }
  bool object(Json* out) {
    out->type = Json::Type::kObject;
    ++i_;  // '{'
    skip_ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    for (;;) {
      std::string key;
      if (i_ >= s_.size() || s_[i_] != '"' || !string(&key)) return false;
      skip_ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      skip_ws();
      Json v;
      if (!value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        skip_ws();
        continue;
      }
      if (s_[i_] == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

bool load_json(const std::string& path, Json* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "perf_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::string err;
  JsonParser parser(text);
  if (!parser.parse(out, &err)) {
    std::fprintf(stderr, "perf_diff: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

// --- comparison ------------------------------------------------------------

struct Options {
  double rel = 0.25;
  double floor_us = 20'000;
  double floor_native = 0.05;
  double scale_new = 1.0;
  bool allow_meta_mismatch = false;
};

/// Which direction is "worse" for a metric, by field-name convention.
enum class Direction { kUpIsWorse, kDownIsWorse, kInformational };

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Direction field_direction(const std::string& key) {
  if (ends_with(key, "_s") || ends_with(key, "_us") ||
      ends_with(key, "_ms") || key.find("seconds") != std::string::npos ||
      key.find("time") != std::string::npos) {
    return Direction::kUpIsWorse;
  }
  if (key.find("per_s") != std::string::npos ||
      key.find("throughput") != std::string::npos ||
      key.find("cups") != std::string::npos) {
    return Direction::kDownIsWorse;
  }
  return Direction::kInformational;
}

int g_regressions = 0;

void check_value(const std::string& what, double oldv, double newv,
                 double rel, double abs_floor, Direction dir) {
  const double delta = newv - oldv;
  const bool worse = dir == Direction::kUpIsWorse
                         ? delta > 0
                         : (dir == Direction::kDownIsWorse ? delta < 0 : false);
  const double magnitude = delta < 0 ? -delta : delta;
  const double rel_change = oldv != 0 ? magnitude / (oldv < 0 ? -oldv : oldv)
                                      : (magnitude != 0 ? 1e9 : 0);
  if (worse && magnitude > abs_floor && rel_change > rel) {
    ++g_regressions;
    std::fprintf(stderr, "REGRESSION %s: %.6g -> %.6g (%+.1f%%)\n",
                 what.c_str(), oldv, newv, 100.0 * delta / oldv);
  } else if (magnitude > abs_floor && rel_change > rel) {
    std::fprintf(stderr, "note: %s changed %.6g -> %.6g (%+.1f%%)%s\n",
                 what.c_str(), oldv, newv, 100.0 * delta / (oldv != 0 ? oldv : 1),
                 dir == Direction::kInformational ? "" : " (improvement)");
  }
}

// --- obs-dir mode ----------------------------------------------------------

std::string attribution_path(const std::string& arg) {
  namespace fs = std::filesystem;
  if (fs::is_directory(arg)) return (fs::path(arg) / "attribution.json").string();
  return arg;
}

int check_stitch(const std::string& arg) {
  Json a;
  if (!load_json(attribution_path(arg), &a)) return 2;
  const Json* stitch = a.find("stitch");
  if (stitch == nullptr) {
    std::fprintf(stderr, "perf_diff: no \"stitch\" section in %s\n",
                 attribution_path(arg).c_str());
    return 2;
  }
  const double coverage =
      stitch->find("coverage") != nullptr
          ? stitch->find("coverage")->number_or(0)
          : 0;
  const double dropped =
      stitch->find("dropped_events") != nullptr
          ? stitch->find("dropped_events")->number_or(0)
          : 0;
  const double total = stitch->find("sends_total") != nullptr
                           ? stitch->find("sends_total")->number_or(0)
                           : 0;
  if (dropped != 0) {
    std::fprintf(stderr,
                 "stitch check FAILED: %g trace events dropped (ring "
                 "overflow) — raise --trace-cap\n",
                 dropped);
    return 1;
  }
  if (coverage < 0.999999) {
    std::fprintf(stderr,
                 "stitch check FAILED: coverage %.4f < 1.0 (%g sends)\n",
                 coverage, total);
    return 1;
  }
  std::printf("stitch check OK: coverage %.4f over %g sends, 0 dropped\n",
              coverage, total);
  return 0;
}

int diff_obs(const std::string& old_arg, const std::string& new_arg,
             const Options& opt) {
  Json oldj, newj;
  if (!load_json(attribution_path(old_arg), &oldj) ||
      !load_json(attribution_path(new_arg), &newj)) {
    return 2;
  }

  // Ledger wall time per (phase, rank) is the gating signal: it is what the
  // user actually waits for, and it is stable against attribution shuffles
  // between compute/wait buckets.
  std::map<std::pair<std::string, double>, double> old_wall;
  const Json* old_ledgers = oldj.find("ledgers");
  const Json* new_ledgers = newj.find("ledgers");
  if (old_ledgers == nullptr || new_ledgers == nullptr) {
    std::fprintf(stderr, "perf_diff: missing \"ledgers\" section\n");
    return 2;
  }
  for (const Json& l : old_ledgers->arr) {
    const Json* phase = l.find("phase");
    const Json* rank = l.find("rank");
    const Json* wall = l.find("wall_us");
    if (phase == nullptr || rank == nullptr || wall == nullptr) continue;
    old_wall[{phase->str, rank->num}] = wall->num;
  }
  for (const Json& l : new_ledgers->arr) {
    const Json* phase = l.find("phase");
    const Json* rank = l.find("rank");
    const Json* wall = l.find("wall_us");
    if (phase == nullptr || rank == nullptr || wall == nullptr) continue;
    const auto it = old_wall.find({phase->str, rank->num});
    if (it == old_wall.end()) continue;
    const std::string what = "wall_us[phase=" + phase->str + " rank=" +
                             std::to_string(static_cast<long>(rank->num)) +
                             "]";
    check_value(what, it->second, wall->num * opt.scale_new, opt.rel,
                opt.floor_us, Direction::kUpIsWorse);
  }

  const Json* old_cp = oldj.find("critical_path");
  const Json* new_cp = newj.find("critical_path");
  if (old_cp != nullptr && new_cp != nullptr &&
      old_cp->find("total_us") != nullptr &&
      new_cp->find("total_us") != nullptr) {
    check_value("critical_path.total_us",
                old_cp->find("total_us")->number_or(0),
                new_cp->find("total_us")->number_or(0) * opt.scale_new,
                opt.rel, opt.floor_us, Direction::kUpIsWorse);
  }
  return g_regressions != 0 ? 1 : 0;
}

// --- bench mode ------------------------------------------------------------

/// Configuration signature of a point: every non-float field, in key order.
/// Points sharing a signature are repeats of the same configuration and are
/// collapsed to their per-field median (noise suppression).
std::string config_signature(const Json& point) {
  std::string sig;
  for (const auto& [k, v] : point.obj) {
    const bool is_config =
        v.type == Json::Type::kString || v.type == Json::Type::kBool ||
        (v.type == Json::Type::kNumber && v.is_integer);
    if (!is_config) continue;
    sig += k;
    sig += '=';
    if (v.type == Json::Type::kString) {
      sig += v.str;
    } else if (v.type == Json::Type::kBool) {
      sig += v.b ? "true" : "false";
    } else {
      sig += std::to_string(static_cast<long long>(v.num));
    }
    sig += ';';
  }
  return sig;
}

std::map<std::string, std::map<std::string, std::vector<double>>>
collect_points(const Json& bench) {
  std::map<std::string, std::map<std::string, std::vector<double>>> out;
  const Json* points = bench.find("points");
  if (points == nullptr) return out;
  for (const Json& p : points->arr) {
    auto& group = out[config_signature(p)];
    for (const auto& [k, v] : p.obj) {
      if (v.type == Json::Type::kNumber && !v.is_integer) {
        group[k].push_back(v.num);
      }
    }
  }
  return out;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2;
}

int diff_bench(const std::string& old_path, const std::string& new_path,
               const Options& opt) {
  Json oldj, newj;
  if (!load_json(old_path, &oldj) || !load_json(new_path, &newj)) return 2;

  const Json* old_name = oldj.find("bench");
  const Json* new_name = newj.find("bench");
  if (old_name != nullptr && new_name != nullptr &&
      old_name->str != new_name->str) {
    std::fprintf(stderr, "perf_diff: different benches: %s vs %s\n",
                 old_name->str.c_str(), new_name->str.c_str());
    return 2;
  }
  const Json* old_meta = oldj.find("meta");
  const Json* new_meta = newj.find("meta");
  if (old_meta != nullptr && new_meta != nullptr) {
    const Json* ob = old_meta->find("build_type");
    const Json* nb = new_meta->find("build_type");
    if (ob != nullptr && nb != nullptr && ob->str != nb->str) {
      std::fprintf(stderr,
                   "perf_diff: build_type mismatch (%s vs %s) — numbers are "
                   "not comparable%s\n",
                   ob->str.c_str(), nb->str.c_str(),
                   opt.allow_meta_mismatch ? " (continuing: "
                                             "--allow-meta-mismatch)"
                                           : "; pass --allow-meta-mismatch "
                                             "to compare anyway");
      if (!opt.allow_meta_mismatch) return 2;
    }
    // Same for the vmpi transport: thread and proc runs are different
    // performance regimes, not noise around one mean.
    const Json* ot = old_meta->find("transport");
    const Json* nt = new_meta->find("transport");
    if (ot != nullptr && nt != nullptr && ot->str != nt->str) {
      std::fprintf(stderr,
                   "perf_diff: transport mismatch (%s vs %s) — numbers are "
                   "not comparable%s\n",
                   ot->str.c_str(), nt->str.c_str(),
                   opt.allow_meta_mismatch ? " (continuing: "
                                             "--allow-meta-mismatch)"
                                           : "; pass --allow-meta-mismatch "
                                             "to compare anyway");
      if (!opt.allow_meta_mismatch) return 2;
    }
    const Json* og = old_meta->find("git");
    const Json* ng = new_meta->find("git");
    if (og != nullptr && ng != nullptr && og->str != ng->str) {
      std::fprintf(stderr, "comparing %s -> %s\n",
                   og->str.empty() ? "(unknown)" : og->str.c_str(),
                   ng->str.empty() ? "(unknown)" : ng->str.c_str());
    }
  }

  const auto old_groups = collect_points(oldj);
  const auto new_groups = collect_points(newj);
  std::size_t compared = 0;
  for (const auto& [sig, new_fields] : new_groups) {
    const auto oit = old_groups.find(sig);
    if (oit == old_groups.end()) {
      std::fprintf(stderr, "note: configuration {%s} absent from baseline\n",
                   sig.c_str());
      continue;
    }
    for (const auto& [key, new_vals] : new_fields) {
      const auto fit = oit->second.find(key);
      if (fit == oit->second.end()) continue;
      ++compared;
      check_value(key + " {" + sig + "}", median(fit->second),
                  median(new_vals) * opt.scale_new, opt.rel, opt.floor_native,
                  field_direction(key));
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "perf_diff: no comparable points\n");
    return 2;
  }
  std::printf("compared %zu metric group(s): %d regression(s)\n", compared,
              g_regressions);
  return g_regressions != 0 ? 1 : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: perf_diff [--rel F] [--floor-us US] [--floor V] "
               "[--scale-new X] [--allow-meta-mismatch] <old> <new>\n"
               "       perf_diff --check-stitch <obs-dir-or-attribution."
               "json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  std::string stitch_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--rel") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.rel = std::strtod(v, nullptr);
    } else if (arg == "--floor-us") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.floor_us = std::strtod(v, nullptr);
    } else if (arg == "--floor") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.floor_native = std::strtod(v, nullptr);
    } else if (arg == "--scale-new") {
      const char* v = next();
      if (v == nullptr) return usage();
      opt.scale_new = std::strtod(v, nullptr);
    } else if (arg == "--allow-meta-mismatch") {
      opt.allow_meta_mismatch = true;
    } else if (arg == "--check-stitch") {
      const char* v = next();
      if (v == nullptr) return usage();
      stitch_arg = v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "perf_diff: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      positional.push_back(arg);
    }
  }

  if (!stitch_arg.empty()) {
    if (!positional.empty()) return usage();
    return check_stitch(stitch_arg);
  }
  if (positional.size() != 2) return usage();

  namespace fs = std::filesystem;
  const bool obs_mode =
      fs::is_directory(positional[0]) || fs::is_directory(positional[1]);
  const int rc = obs_mode ? diff_obs(positional[0], positional[1], opt)
                          : diff_bench(positional[0], positional[1], opt);
  if (rc == 0) std::printf("perf_diff OK\n");
  return rc;
}
