// transport_probe: measure the LogP-style α (per-message latency) and β
// (per-byte inverse bandwidth) of each vmpi transport on this machine, the
// numbers CostParams::calibrated() hard-codes and the ledger's modeled
// communication seconds are built from.
//
//   transport_probe                      # probe thread and proc
//   transport_probe --transport proc     # one backend only
//   transport_probe --iters 2000         # more round trips per size
//   transport_probe --out probe.json     # default BENCH_transport_probe.json
//
// Method: a 2-rank ping-pong. Rank 1 echoes every message; rank 0 times
// each round trip with steady_clock and keeps the median (round trips, not
// one-way: the clocks of two processes are not comparable, one clock timing
// a full echo is). α is half the median round trip at the smallest size
// (8 B — pure per-message overhead); β comes from the slope between the
// smallest and largest size, where the payload memcpys dominate:
//     β = (half_rtt(max) − half_rtt(min)) / (max_bytes − min_bytes)
// The median over many iterations suppresses scheduler noise; warmup
// iterations run first so page faults and lazy ring allocation (the proc
// transport's shared region is mapped lazily) are off the books.
//
// The BENCH_transport_probe.json points carry a "transport" string field,
// so perf_diff's config signature never compares thread numbers against
// proc numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "util/flags.hpp"
#include "vmpi/runtime.hpp"

using namespace pgasm;

namespace {

struct SizePoint {
  std::size_t bytes = 0;
  double half_rtt_s = 0;  ///< median one-way time (half the median RTT)
};

struct ProbeResultSet {
  std::vector<SizePoint> sizes;
  double alpha_s = 0;
  double beta_s_per_byte = 0;
};

constexpr int kTag = 1;

/// Median round-trip seconds for `iters` echoes of an n-byte message.
double median_rtt(vmpi::Comm& comm, std::size_t n, int warmup, int iters) {
  std::vector<std::byte> buf(std::max<std::size_t>(n, 1));
  for (int i = 0; i < warmup; ++i) {
    comm.send(1, kTag, buf.data(), n);
    comm.recv(1, kTag);
  }
  std::vector<double> rtt(static_cast<std::size_t>(iters));
  for (auto& sample : rtt) {
    const auto t0 = std::chrono::steady_clock::now();
    comm.send(1, kTag, buf.data(), n);
    comm.recv(1, kTag);
    const auto t1 = std::chrono::steady_clock::now();
    sample = std::chrono::duration<double>(t1 - t0).count();
  }
  std::sort(rtt.begin(), rtt.end());
  const std::size_t m = rtt.size();
  return m % 2 == 1 ? rtt[m / 2] : (rtt[m / 2 - 1] + rtt[m / 2]) / 2;
}

ProbeResultSet probe_transport(const std::string& transport,
                               const std::vector<std::size_t>& sizes,
                               int warmup, int iters) {
  ProbeResultSet res;
  res.sizes.reserve(sizes.size());
  // Results land in rank 0's frames: rank 0 runs on the driver's thread on
  // both transports (parent-resident on proc), so captured writes survive.
  vmpi::Runtime rt(2, transport);
  rt.run([&](vmpi::Comm& comm) {
    if (comm.rank() == 0) {
      for (const std::size_t n : sizes) {
        // Fewer iterations for the big sizes: each one moves 2n bytes.
        const int it = n >= (1u << 18) ? std::max(8, iters / 16) : iters;
        SizePoint pt;
        pt.bytes = n;
        pt.half_rtt_s = median_rtt(comm, n, warmup, it) / 2;
        res.sizes.push_back(pt);
      }
      // Tell the echo rank we are done.
      const std::uint8_t bye = 0;
      comm.send(1, kTag + 1, &bye, 1);
    } else {
      for (;;) {
        vmpi::Status st;
        auto msg = comm.recv(0, vmpi::kAnyTag, &st);
        if (st.tag != kTag) break;  // the kTag+1 goodbye
        comm.send_payload(0, kTag, std::move(msg));
      }
    }
  });

  const SizePoint& lo = res.sizes.front();
  const SizePoint& hi = res.sizes.back();
  res.alpha_s = lo.half_rtt_s;
  res.beta_s_per_byte = (hi.half_rtt_s - lo.half_rtt_s) /
                        static_cast<double>(hi.bytes - lo.bytes);
  // A sub-α fit (tiny machine, cache effects) would make the modeled cost
  // negative; clamp to an ~unlimited-bandwidth floor instead.
  if (res.beta_s_per_byte <= 0) res.beta_s_per_byte = 1e-12;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string which = flags.get_string("transport", "");
  const int iters = static_cast<int>(flags.get_i64("iters", 400));
  const int warmup = static_cast<int>(flags.get_i64("warmup", 32));
  const std::string out = flags.get_string("out", "");
  flags.finish();

  std::vector<std::string> transports;
  if (which.empty()) {
    transports = {"thread", "proc"};
  } else {
    // Validate the name up front (throws on a typo).
    transports = {vmpi::transport_name(vmpi::resolve_transport(which))};
  }
  const std::vector<std::size_t> sizes = {8,        1024,     16384,
                                          1u << 18, 1u << 20};

  bench::BenchJson bj("transport_probe");
  bj.param("iters", iters);
  bj.param("warmup", warmup);

  for (const auto& name : transports) {
    const auto res = probe_transport(name, sizes, warmup, iters);
    const auto modeled =
        vmpi::CostParams::calibrated(vmpi::resolve_transport(name));
    const double bw_gbps = 1.0 / res.beta_s_per_byte / 1e9;
    std::printf(
        "%-6s  alpha %8.3f us  beta %.3e s/B  (bandwidth %.2f GB/s)\n",
        name.c_str(), res.alpha_s * 1e6, res.beta_s_per_byte, bw_gbps);
    std::printf(
        "        calibrated defaults: alpha %8.3f us  bandwidth %.2f GB/s  "
        "(skew %.2fx / %.2fx)\n",
        modeled.alpha * 1e6, 1.0 / modeled.beta / 1e9,
        res.alpha_s / modeled.alpha, modeled.beta / res.beta_s_per_byte);
    for (const auto& pt : res.sizes) {
      auto& p = bj.point();
      p.set("transport", name);
      p.set("msg_bytes", static_cast<std::uint64_t>(pt.bytes));
      p.set("half_rtt_us", pt.half_rtt_s * 1e6);
    }
    auto& s = bj.point();
    s.set("transport", name);
    s.set("fit", true);
    s.set("alpha_us", res.alpha_s * 1e6);
    s.set("bandwidth_gbps", bw_gbps);
    s.set("alpha_skew_vs_calibrated", res.alpha_s / modeled.alpha);
  }

  bj.write(out);
  return 0;
}
