#!/usr/bin/env python3
"""pgasm-lint: project-invariant checks the generic linters can't express.

Checks
------
W001  wire-protocol hygiene: every protocol tag in core/cluster_protocol.hpp
      carries a `pgasm-wire:` annotation naming either `raw-u64` or exactly
      one encode_X/decode_X codec pair; each named pair must be declared in
      core/wire.hpp, be claimed by exactly one tag, and be exercised by a
      round-trip test under tests/ (both halves referenced).
W002  raw-comm confinement: vmpi send/recv calls are confined to the
      protocol layers (src/vmpi/ itself, core/cluster_protocol.*,
      gst/parallel_build.cpp). Anywhere else needs an explicit waiver:
      a `pgasm-lint: allow(raw-comm): <reason>` comment on or above the line.
W003  observability naming: metric names follow subsystem.noun[_verb]
      (1-2 dot-separated snake_case segments after a known subsystem);
      trace span/instant names are single snake_case tokens and their
      category is a known subsystem.
W004  hot-path allocation ban: function bodies taking an align::Workspace&
      must not allocate (no new/make_unique/make_shared/malloc, no local
      by-value std containers) — the workspace exists so the alignment inner
      loop reuses grow-only buffers.
W005  include-what-you-use (lite): public headers under src/ must directly
      include the std header for every std:: symbol they name, so any
      subset of pgasm.hpp compiles standalone.
W006  test-label audit: every registered test carries exactly one suite
      label from {unit, parallel, faults, obs, fuzz, verify, determ}.
W007  annotated-lock discipline: raw std::mutex / std::condition_variable /
      std::lock_guard / std::unique_lock / std::scoped_lock declarations and
      raw .lock()/.unlock()/.try_lock() member calls are banned outside
      util/thread_annotations.hpp — all locking goes through util::Mutex,
      util::MutexLock, util::ReleasableMutexLock, and util::CondVar so the
      clang capability analysis (scripts/ci.sh tsafety) sees every critical
      section.
W008  no blocking under a lock: a blocking vmpi call (recv*/ssend*/probe/
      probe_timeout/barrier/allreduce*) inside a region that holds a
      util::MutexLock / ReleasableMutexLock is a deadlock risk — the peer
      may need the same lock to make the call return. src/vmpi/ itself is
      exempt (its mailbox mechanics ARE the blocking primitives).
W009  protocol-switch exhaustiveness: every `switch` over a protocol enum
      (enum classes declared in *protocol*.hpp, e.g. MsgKind, MasterState)
      must name every enumerator and must not carry a `default:` label —
      a silent default would swallow a newly added message kind that
      -Werror=switch could otherwise catch.
W010  guarded-by coverage: in any class that owns a util::Mutex, every
      non-atomic data member must carry PGASM_GUARDED_BY/PGASM_PT_GUARDED_BY
      (or an explicit `pgasm-lint: allow(guard): <reason>` waiver stating
      why it needs no lock).
W012  metric-prefix registration: every obs:: metric name registered
      anywhere under src/ (counter/gauge/histogram — src/obs included,
      unlike W003's shape check) must start with a subsystem prefix from
      the SUBSYSTEMS registry below. An unregistered prefix is usually a
      typo ("cluter.") or an ad-hoc namespace that dashboards and
      perf_diff would silently miss; add the subsystem to the registry in
      the same change that introduces it.
W011  checkpoint-write confinement: checkpoint and manifest bytes reach
      disk only through core/wire.cpp's frame writer (save_frame_atomic:
      version byte + CRC32 + fsync + atomic rename). A raw std::ofstream /
      write-mode std::fstream / fopen("w...") that names a *.pgck / *.pgmf
      / *.ckpt / checkpoint / manifest path anywhere else (src/ and tests/)
      bypasses the integrity frame and produces files the typed loaders
      must treat as corrupt. Deliberate corruption injection in tests is
      waived with `pgasm-lint: allow(raw-ckpt-write): <reason>`.
W013  raw-syscall confinement: process, shared-memory and socket syscalls
      (fork/mmap/shm_open/waitpid/kill/socket/... ) appear only under
      src/vmpi/ — the multi-process transport is the one layer allowed to
      own a process model; everything above it must work identically over
      rank threads and rank processes. Waive deliberate uses with
      `pgasm-lint: allow(raw-proc): <reason>`.
W014  explicit memory orders: every atomic operation in src/ must name its
      std::memory_order (or a RingOrder, for the ring_core facade) — a
      bare .load()/.store(v)/.fetch_add(n) defaults to seq_cst, which both
      hides the intended ordering contract from reviewers and from the
      pgasm-ringcheck interleaving checker that verifies it. Separately,
      a raw `std::atomic<...>` member/variable declaration outside the
      approved concurrency headers (ATOMIC_APPROVED below) needs a
      `pgasm-lint: allow(raw-atomic): <reason>` waiver stating its
      ordering story.
W015  wire-tag table membership: every wire-tag constant (kTag*) declared
      anywhere under src/ must correspond to exactly one row of exactly
      one declarative protocol table (the k*Protocol MsgSpec arrays in
      *protocol*.hpp, e.g. kProtocol for clustering tags 101-104 and
      kGstProtocol for the FT-GST tags 210-216). A tag without a table
      row is an undocumented message the model checker and
      protocol_check can't see; a tag with rows in two tables is a
      colliding reuse.

Front-ends: W007-W010 are semantic checks. When a clang compiler is
available (and unless --frontend=lexer), facts are extracted from clang's
`-ast-dump=json` over the exported compile_commands.json; otherwise a
built-in tokenizer front-end computes the same facts from source text
(brace-matched scopes, class bodies, switch bodies). The container this
repo builds in ships GCC only, so the lexer path is the one CI exercises;
the clang path upgrades precision when available and falls back loudly on
any failure.

Exit status: 0 clean, 1 findings, 2 tool error (bad invocation, missing
root, unreadable inputs).

Output: human-readable text by default; `--format=json` emits one object
with a `findings` array whose entries carry stable IDs (content-hashed, so
they survive line-number drift) for CI annotation.

Waivers: append `pgasm-lint: allow(<check>): <reason>` in a comment on the
offending line or the line above. <check> is the lowercase slug shown in
the finding, e.g. raw-comm, alloc, naming, iwyu, raw-lock, lock-blocking,
switch, guard, metric-prefix, raw-proc, memory-order, raw-atomic.

Performance: when more than one check is selected, checks run in a
multiprocessing pool (one task per check; finding IDs are unchanged
because ordinals only count within a check). File reads are memoized per
process, and the clang AST pass caches extracted facts per file content
hash under build/.ast_cache so unchanged files never rerun the compiler.
"""

from __future__ import annotations

import argparse
import functools
import hashlib
import json
import multiprocessing
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
TESTS = REPO / "tests"

FINDINGS: list[dict] = []


def finding(path: Path, line_no: int, check: str, slug: str, msg: str) -> None:
    try:
        rel = str(path.relative_to(REPO))
    except ValueError:
        rel = str(path)
    # Stable ID: hash of what the finding says, not where it says it —
    # line numbers drift with every edit, so they stay out of the basis.
    # An occurrence ordinal disambiguates identical findings in one file.
    basis = f"{check}:{slug}:{rel}:{msg}"
    ordinal = sum(1 for f in FINDINGS
                  if f["check"] == check and f["path"] == rel
                  and f["message"] == msg)
    fid = "PL-" + hashlib.sha256(
        f"{basis}#{ordinal}".encode()).hexdigest()[:12]
    FINDINGS.append({
        "id": fid,
        "check": check,
        "slug": slug,
        "path": rel,
        "line": line_no,
        "message": msg,
    })


@functools.lru_cache(maxsize=None)
def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def waived(lines: list[str], idx: int, slug: str) -> bool:
    """True when line idx (0-based) or the contiguous comment block above
    it carries a waiver."""
    needle = f"pgasm-lint: allow({slug})"
    if needle in lines[idx]:
        return True
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if needle in lines[j]:
            return True
        j -= 1
    return False


def strip_comments(line: str) -> str:
    """Drop // comments (good enough: no multiline comment bodies in src)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def src_files(*suffixes: str) -> list[Path]:
    out: list[Path] = []
    for s in suffixes:
        out.extend(sorted(SRC.rglob(f"*{s}")))
    return out


def brace_depths(lines: list[str]) -> list[tuple[int, int]]:
    """(depth_before, depth_after) per line, counting comment-stripped
    braces. String literals containing braces would miscount; none of the
    checked code keeps braces in strings on lock/switch/class lines."""
    out: list[tuple[int, int]] = []
    depth = 0
    for raw in lines:
        before = depth
        for ch in strip_comments(raw):
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth = max(0, depth - 1)
        out.append((before, depth))
    return out


# --------------------------------------------------------------------------
# W001: wire tag <-> codec pairing
# --------------------------------------------------------------------------

TAG_RE = re.compile(r"inline constexpr int (kTag\w+)\s*=")
ANNOT_RE = re.compile(r"pgasm-wire:\s*(\S+)")


def check_w001() -> None:
    proto = SRC / "core" / "cluster_protocol.hpp"
    wire = SRC / "core" / "wire.hpp"
    if not proto.exists():
        finding(proto, 1, "W001", "wire", "core/cluster_protocol.hpp missing")
        return
    lines = read_lines(proto)

    # Collect tag -> annotation. The annotation sits on the tag's line or on
    # the continuation comment line directly below it.
    tags: dict[str, tuple[int, str | None]] = {}
    for i, line in enumerate(lines):
        m = TAG_RE.search(line)
        if not m:
            continue
        annot = ANNOT_RE.search(line)
        if not annot and i + 1 < len(lines) and lines[i + 1].lstrip().startswith("//"):
            annot = ANNOT_RE.search(lines[i + 1])
        tags[m.group(1)] = (i + 1, annot.group(1) if annot else None)

    if not tags:
        finding(proto, 1, "W001", "wire", "no protocol tags found (kTag*)")
        return

    wire_text = (wire.read_text(encoding="utf-8")
                 if wire.exists() else "")
    test_text = "\n".join(
        p.read_text(encoding="utf-8", errors="replace")
        for p in sorted(TESTS.rglob("*.cpp")))

    claimed: dict[str, str] = {}  # codec pair -> tag
    for tag, (line_no, annot) in sorted(tags.items()):
        if annot is None:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} has no `pgasm-wire:` annotation "
                    "(name its codec pair or raw-u64)")
            continue
        if annot == "raw-u64":
            continue
        m = re.fullmatch(r"(encode_\w+)/(decode_\w+)", annot)
        if not m:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} annotation {annot!r} is neither raw-u64 nor "
                    "encode_X/decode_X")
            continue
        enc, dec = m.group(1), m.group(2)
        if annot in claimed:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} claims codec pair {annot} already claimed by "
                    f"{claimed[annot]}")
        claimed[annot] = tag
        for fn in (enc, dec):
            if not re.search(rf"\b{fn}\s*\(", wire_text):
                finding(proto, line_no, "W001", "wire",
                        f"{tag} names {fn} but core/wire.hpp declares no "
                        "such codec")
        # Round-trip coverage: both halves (or the try_ decode variant)
        # must appear in a test.
        has_enc = re.search(rf"\b{enc}\s*\(|\b{enc}_payload\s*\(", test_text)
        has_dec = re.search(rf"\b(try_)?{dec}\s*\(", test_text)
        if not (has_enc and has_dec):
            finding(proto, line_no, "W001", "wire",
                    f"{tag} codec pair {annot} lacks a round-trip test "
                    "under tests/ (both halves must be exercised)")


# --------------------------------------------------------------------------
# W002: raw comm confinement
# --------------------------------------------------------------------------

COMM_CALL_RE = re.compile(
    r"\.\s*(s?send(?:_value|_payload|_vector)?|"
    r"recv(?:_value|_vector|_timeout)?)\s*(?:<[^;>]*>)?\s*\(")

COMM_ALLOWED = {
    Path("core/cluster_protocol.hpp"),
    Path("core/cluster_protocol.cpp"),
    Path("gst/parallel_build.cpp"),
}


def check_w002() -> None:
    for path in src_files(".cpp", ".hpp"):
        rel = path.relative_to(SRC)
        if rel.parts[0] == "vmpi" or rel in COMM_ALLOWED:
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = COMM_CALL_RE.search(line)
            if not m:
                continue
            # Only comm objects: require a comm-ish receiver to cut false
            # positives from unrelated send/recv-named methods.
            prefix = line[: m.start()]
            if not re.search(r"\b(comm|c|mailbox)$", prefix.rstrip()):
                continue
            if waived(lines, i, "raw-comm"):
                continue
            finding(path, i + 1, "W002", "raw-comm",
                    f"direct vmpi {m.group(1)}() outside the protocol "
                    "layer; route through core/cluster_protocol.* or add "
                    "`pgasm-lint: allow(raw-comm): <reason>`")


# --------------------------------------------------------------------------
# W003: observability naming
# --------------------------------------------------------------------------

SUBSYSTEMS = {
    "align", "assembly", "cluster", "comm", "engine", "gst", "obs", "olc",
    "pipeline", "preprocess", "recovery", "scaffold", "seq", "sim", "trace",
    "vmpi", "wire",
}
METRIC_RE = re.compile(r"\.(counter|gauge|histogram)\(\s*\"([^\"]+)\"")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,2}$")
TRACE_RE = re.compile(r"\bobs::(span|instant)\(\s*[^,]+,\s*\"([^\"]+)\"\s*,\s*\"([^\"]+)\"")
TOKEN_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def check_w003() -> None:
    for path in src_files(".cpp", ".hpp"):
        if path.relative_to(SRC).parts[0] == "obs":
            continue  # the registry/tracer themselves, not instrumentation
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for m in METRIC_RE.finditer(line):
                name = m.group(2)
                if waived(lines, i, "naming"):
                    continue
                if not METRIC_NAME_RE.match(name):
                    finding(path, i + 1, "W003", "naming",
                            f"metric {name!r} does not match "
                            "subsystem.noun[_verb]")
                elif name.split(".")[0] not in SUBSYSTEMS:
                    finding(path, i + 1, "W003", "naming",
                            f"metric {name!r} uses unknown subsystem "
                            f"{name.split('.')[0]!r}")
            for m in TRACE_RE.finditer(line):
                kind, name, cat = m.groups()
                if waived(lines, i, "naming"):
                    continue
                if not TOKEN_RE.match(name):
                    finding(path, i + 1, "W003", "naming",
                            f"trace {kind} name {name!r} is not a single "
                            "snake_case token")
                if cat not in SUBSYSTEMS:
                    finding(path, i + 1, "W003", "naming",
                            f"trace {kind} category {cat!r} is not a known "
                            "subsystem")


# --------------------------------------------------------------------------
# W004: Workspace hot-path allocation ban
# --------------------------------------------------------------------------

HOT_FILE_RELS = [
    Path("align/overlap.cpp"),
    Path("align/overlap.hpp"),
    Path("align/pairwise.cpp"),
    Path("align/linear_space.cpp"),
    Path("align/workspace.hpp"),
    Path("core/overlap_engine.cpp"),
]
ALLOC_RES = [
    (re.compile(r"\bnew\s"), "naked new"),
    (re.compile(r"\bstd::make_(unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    # A by-value local std container (declaration, not a reference/pointer
    # parameter or return type).
    (re.compile(
        r"\bstd::(vector|string|deque|map|set|unordered_map|unordered_set)\s*"
        r"(?:<[^;&*]*>)?\s+\w+\s*[({=;]"), "local heap container"),
]


def workspace_function_ranges(lines: list[str]) -> list[tuple[int, int]]:
    """(start, end) 0-based line ranges of function bodies whose signature
    mentions Workspace& — tracked with a brace counter, which is adequate
    for this codebase's formatting."""
    ranges: list[tuple[int, int]] = []
    i = 0
    while i < len(lines):
        line = strip_comments(lines[i])
        if re.search(r"\bWorkspace\s*&", line) and "(" in line:
            # Find the opening brace of the body (may be several lines on).
            j = i
            depth = 0
            body_start = None
            while j < len(lines):
                for ch in strip_comments(lines[j]):
                    if ch == "{":
                        depth += 1
                        if body_start is None:
                            body_start = j
                    elif ch == "}":
                        depth -= 1
                if body_start is not None and depth == 0:
                    ranges.append((body_start, j))
                    break
                if body_start is None and ";" in strip_comments(lines[j]):
                    break  # declaration only, no body
                j += 1
            i = j + 1
        else:
            i += 1
    return ranges


def check_w004() -> None:
    for rel in HOT_FILE_RELS:
        path = SRC / rel
        if not path.exists():
            continue
        lines = read_lines(path)
        for start, end in workspace_function_ranges(lines):
            for i in range(start, end + 1):
                line = strip_comments(lines[i])
                for alloc_re, what in ALLOC_RES:
                    if alloc_re.search(line) and not waived(lines, i, "alloc"):
                        finding(path, i + 1, "W004", "alloc",
                                f"{what} inside a Workspace& hot-path "
                                "function; use the workspace's grow-only "
                                "buffers")


# --------------------------------------------------------------------------
# W005: include-what-you-use (lite)
# --------------------------------------------------------------------------

# std symbol -> header(s) that satisfy it. Conservative on purpose: only
# symbols whose home header is unambiguous, with <iosfwd> accepted for
# stream types named (not used) in signatures.
IWYU_MAP: dict[str, tuple[str, ...]] = {
    "std::vector": ("vector",),
    "std::string": ("string",),
    "std::string_view": ("string_view",),
    "std::deque": ("deque",),
    "std::array": ("array",),
    "std::span": ("span",),
    "std::optional": ("optional",),
    "std::function": ("functional",),
    "std::unique_ptr": ("memory",),
    "std::shared_ptr": ("memory",),
    "std::pair": ("utility",),
    "std::tuple": ("tuple",),
    "std::map": ("map",),
    "std::unordered_map": ("unordered_map",),
    "std::unordered_set": ("unordered_set",),
    "std::atomic": ("atomic",),
    "std::mutex": ("mutex",),
    "std::condition_variable": ("condition_variable",),
    "std::thread": ("thread",),
    "std::chrono": ("chrono",),
    "std::runtime_error": ("stdexcept",),
    "std::logic_error": ("stdexcept",),
    "std::invalid_argument": ("stdexcept",),
    "std::uint8_t": ("cstdint",),
    "std::uint16_t": ("cstdint",),
    "std::uint32_t": ("cstdint",),
    "std::uint64_t": ("cstdint",),
    "std::int8_t": ("cstdint",),
    "std::int32_t": ("cstdint",),
    "std::int64_t": ("cstdint",),
    "std::size_t": ("cstddef", "cstdint", "cstdio"),
    "std::byte": ("cstddef",),
    "std::ostream": ("ostream", "iosfwd", "sstream", "iostream"),
    "std::istream": ("istream", "iosfwd", "sstream", "iostream"),
}
INCLUDE_RE = re.compile(r'^\s*#include\s*<([^>]+)>')
SYM_RE = re.compile(r"\bstd::[a-z_0-9]+")


def check_w005() -> None:
    for path in src_files(".hpp"):
        lines = read_lines(path)
        includes = {m.group(1) for line in lines
                    if (m := INCLUDE_RE.match(line))}
        reported: set[str] = set()
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for m in SYM_RE.finditer(line):
                sym = m.group(0)
                headers = IWYU_MAP.get(sym)
                if headers is None or sym in reported:
                    continue
                if not includes.isdisjoint(headers):
                    continue
                if waived(lines, i, "iwyu"):
                    reported.add(sym)
                    continue
                reported.add(sym)
                finding(path, i + 1, "W005", "iwyu",
                        f"{sym} used but <{headers[0]}> not directly "
                        "included")


# --------------------------------------------------------------------------
# W006: test label audit
# --------------------------------------------------------------------------

VALID_LABELS = {"unit", "parallel", "faults", "obs", "fuzz", "verify",
                "determ"}
PGASM_TEST_RE = re.compile(r"^\s*pgasm_test\((\w+)(.*)\)\s*$")
PGASM_FUZZ_RE = re.compile(r"^\s*pgasm_fuzz\((\w+)\)\s*$")


def check_w006() -> None:
    cml = TESTS / "CMakeLists.txt"
    if not cml.exists():
        finding(TESTS, 1, "W006", "labels", "tests/CMakeLists.txt missing")
        return
    for i, line in enumerate(read_lines(cml)):
        m = PGASM_TEST_RE.match(line)
        if not m:
            continue
        name, rest = m.groups()
        labels = re.findall(r"LABELS\s+([\w;\s]+)", rest)
        toks = labels[0].split() if labels else []
        if len(toks) != 1 or toks[0] not in VALID_LABELS:
            finding(cml, i + 1, "W006", "labels",
                    f"test {name} must carry exactly one label from "
                    f"{sorted(VALID_LABELS)} (got {toks or 'none'})")
    fuzz_cml = TESTS / "fuzz" / "CMakeLists.txt"
    if fuzz_cml.exists():
        text = fuzz_cml.read_text(encoding="utf-8")
        if "LABELS fuzz" not in text:
            finding(fuzz_cml, 1, "W006", "labels",
                    "fuzz tests must be registered with LABELS fuzz")
    else:
        finding(TESTS, 1, "W006", "labels", "tests/fuzz/CMakeLists.txt missing")


# --------------------------------------------------------------------------
# W007-W010 shared infrastructure: concurrency-fact front-ends
# --------------------------------------------------------------------------

# The annotated-lock vocabulary lives here; the shim is the one place the
# raw std primitives may appear.
SHIM_REL = Path("util/thread_annotations.hpp")


def is_shim(path: Path) -> bool:
    try:
        return path.relative_to(SRC) == SHIM_REL
    except ValueError:
        return path.name == SHIM_REL.name


RAW_LOCK_TYPE_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
RAW_LOCK_CALL_RE = re.compile(
    r"[\w\)\]]\s*(?:\.|->)\s*(lock|unlock|try_lock)\s*\(\s*\)")

# Blocking vmpi surface (Comm methods that can wait on a peer). send/
# send_payload enqueue and iprobe polls; everything here rendezvouses or
# sleeps until the peer acts, which is what makes holding a lock across it
# a deadlock risk.
BLOCKING_VMPI_RE = re.compile(
    r"\.\s*(recv|recv_timeout|recv_value|recv_value_timeout|recv_vector|"
    r"recv_vector_timeout|ssend|ssend_payload|ssend_vector|probe|"
    r"probe_timeout|barrier|allreduce_vector|allreduce_sum|allreduce_max|"
    r"allreduce_min)\s*(?:<[^;(]*>)?\s*\(")

LOCK_DECL_RE = re.compile(
    r"\b(?:util::)?(MutexLock|ReleasableMutexLock)\s+(\w+)\s*[({]")


def concurrency_files() -> list[Path]:
    return [p for p in src_files(".cpp", ".hpp") if not is_shim(p)]


def check_w007() -> None:
    """Facts: raw lock-type declarations and raw lock-method calls."""
    for path in concurrency_files():
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = RAW_LOCK_TYPE_RE.search(line)
            if m and not waived(lines, i, "raw-lock"):
                finding(path, i + 1, "W007", "raw-lock",
                        f"raw std::{m.group(1)} outside "
                        "util/thread_annotations.hpp; use util::Mutex / "
                        "util::MutexLock / util::CondVar so the capability "
                        "analysis sees this critical section")
            c = RAW_LOCK_CALL_RE.search(line)
            if c and not waived(lines, i, "raw-lock"):
                finding(path, i + 1, "W007", "raw-lock",
                        f"raw .{c.group(1)}() call; hold locks through "
                        "util::MutexLock / util::ReleasableMutexLock scopes "
                        "only")


def lock_regions(lines: list[str]) -> list[tuple[str, int, int]]:
    """(lock_var, start, end) 0-based line ranges during which an annotated
    lock scope is held. The region opens at the declaration and closes at
    the end of the enclosing block or at an early release()."""
    depths = brace_depths(lines)
    regions: list[tuple[str, int, int]] = []
    for i, raw in enumerate(lines):
        line = strip_comments(raw)
        m = LOCK_DECL_RE.search(line)
        if not m:
            continue
        var = m.group(2)
        opened_at = depths[i][0]
        end = len(lines) - 1
        for j in range(i + 1, len(lines)):
            if re.search(rf"\b{var}\s*\.\s*(release|unlock)\s*\(",
                         strip_comments(lines[j])):
                end = j
                break
            if depths[j][1] < opened_at:
                end = j
                break
        regions.append((var, i, end))
    return regions


def check_w008() -> None:
    for path in concurrency_files():
        rel = path.relative_to(SRC)
        if rel.parts[0] == "vmpi":
            continue  # the mailbox mechanics ARE the blocking primitives
        lines = read_lines(path)
        for var, start, end in lock_regions(lines):
            for i in range(start, end + 1):
                line = strip_comments(lines[i])
                m = BLOCKING_VMPI_RE.search(line)
                if m and not waived(lines, i, "lock-blocking"):
                    finding(path, i + 1, "W008", "lock-blocking",
                            f"blocking vmpi call .{m.group(1)}() while "
                            f"holding lock scope '{var}' (opened line "
                            f"{start + 1}) — the peer may need that lock to "
                            "let this call return; drop the lock first")


# --------------------------------------------------------------------------
# W009: protocol-switch exhaustiveness
# --------------------------------------------------------------------------

ENUM_RE = re.compile(r"enum\s+class\s+(\w+)[^{;]*\{([^}]*)\}", re.S)
CASE_RE = re.compile(r"\bcase\s+([\w:]+)::(\w+)\s*:")
DEFAULT_RE = re.compile(r"^\s*default\s*:")


def protocol_enums() -> dict[str, tuple[Path, list[str]]]:
    """Enum name -> (declaring file, enumerators) for every enum class
    declared in a *protocol*.hpp under src/."""
    enums: dict[str, tuple[Path, list[str]]] = {}
    for path in sorted(SRC.rglob("*protocol*.hpp")):
        text = path.read_text(encoding="utf-8", errors="replace")
        text = re.sub(r"//[^\n]*", "", text)
        for m in ENUM_RE.finditer(text):
            name, body = m.group(1), m.group(2)
            members = []
            for entry in body.split(","):
                em = re.match(r"\s*(\w+)", entry)
                if em:
                    members.append(em.group(1))
            if members:
                enums[name] = (path, members)
    return enums


def switch_bodies(lines: list[str]) -> list[tuple[int, int, int]]:
    """(switch_line, body_start, body_end) 0-based for every switch."""
    out: list[tuple[int, int, int]] = []
    for i, raw in enumerate(lines):
        if not re.search(r"\bswitch\s*\(", strip_comments(raw)):
            continue
        depth = 0
        body_start = None
        for j in range(i, len(lines)):
            for ch in strip_comments(lines[j]):
                if ch == "{":
                    depth += 1
                    if body_start is None:
                        body_start = j
                elif ch == "}":
                    depth -= 1
            if body_start is not None and depth == 0:
                out.append((i, body_start, j))
                break
    return out


def check_w009() -> None:
    enums = protocol_enums()
    if not enums:
        return  # nothing declared; W001 complains about the missing header
    for path in concurrency_files():
        lines = read_lines(path)
        for sw_line, start, end in switch_bodies(lines):
            body = lines[start:end + 1]
            handled: dict[str, set[str]] = {}
            has_default = any(DEFAULT_RE.match(strip_comments(b))
                              for b in body)
            for b in body:
                for cm in CASE_RE.finditer(strip_comments(b)):
                    qual = cm.group(1).split("::")[-1]
                    handled.setdefault(qual, set()).add(cm.group(2))
            for enum_name, cases in handled.items():
                if enum_name not in enums:
                    continue
                if waived(lines, sw_line, "switch"):
                    continue
                _, members = enums[enum_name]
                missing = [e for e in members if e not in cases]
                for e in missing:
                    finding(path, sw_line + 1, "W009", "switch",
                            f"switch over {enum_name} does not handle "
                            f"{enum_name}::{e} — every protocol message "
                            "kind/state needs an explicit case")
                if has_default:
                    finding(path, sw_line + 1, "W009", "switch",
                            f"switch over {enum_name} has a `default:` "
                            "label — a silent default swallows new "
                            "enumerators that -Werror=switch would catch")


# --------------------------------------------------------------------------
# W010: PGASM_GUARDED_BY coverage
# --------------------------------------------------------------------------

CLASS_OPEN_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:class|struct)\s+"
    r"(?:PGASM_\w+(?:\([^)]*\))?\s+)?(\w+)[^;{]*\{")
MUTEX_MEMBER_RE = re.compile(r"\b(?:util::)?Mutex\s+\w+\s*;")
MEMBER_SKIP_PREFIXES = (
    "public", "private", "protected", "using", "friend", "static",
    "typedef", "template", "enum", "class", "struct", "case", "return",
    "#", "}", "{")


def class_bodies(lines: list[str]) -> list[tuple[str, int, int]]:
    """(name, open_line, close_line) 0-based for class/struct bodies whose
    opening brace sits on the declaration line (project style)."""
    depths = brace_depths(lines)
    out: list[tuple[str, int, int]] = []
    for i, raw in enumerate(lines):
        m = CLASS_OPEN_RE.match(strip_comments(raw))
        if not m:
            continue
        open_depth = depths[i][1]  # depth inside the class body
        for j in range(i + 1, len(lines)):
            if depths[j][1] < open_depth:
                out.append((m.group(1), i, j))
                break
    return out


def member_decl(line: str) -> tuple[str, str] | None:
    """(type_part, member_name) for a single-line data-member declaration,
    None for anything else (methods, labels, macros, continuations)."""
    stripped = strip_comments(line).strip()
    if not stripped or stripped.startswith(MEMBER_SKIP_PREFIXES):
        return None
    # Peel annotation macros so their parens don't read as a param list.
    bare = re.sub(r"PGASM_\w+\s*\([^)]*\)", "", stripped)
    bare = re.sub(r"PGASM_\w+", "", bare).strip()
    if not bare.endswith(";"):
        return None
    if bare.count("(") != bare.count(")"):
        return None  # continuation line of a multi-line declaration
    # Drop a trailing initializer, then any remaining paren means function.
    decl = re.sub(r"(=[^;]*|\{[^;]*\})\s*;$", ";", bare)
    if "(" in decl:
        return None
    m = re.match(r"^(?:mutable\s+)?(.*[\s>*&])(\w+)\s*(?:\[\s*\w*\s*\])?;$",
                 decl)
    if not m or not m.group(1).strip():
        return None
    return m.group(1).strip(), m.group(2)


def check_w010() -> None:
    for path in concurrency_files():
        lines = read_lines(path)
        depths = brace_depths(lines)
        for name, start, end in class_bodies(lines):
            body_depth = depths[start][1]
            body_text = "\n".join(
                strip_comments(l) for l in lines[start:end + 1])
            if not MUTEX_MEMBER_RE.search(body_text):
                continue  # lock-free class: W010 has nothing to prove
            for i in range(start + 1, end):
                if depths[i][0] != body_depth:
                    continue  # inside a nested scope (inline method body)
                decl = member_decl(lines[i])
                if decl is None:
                    continue
                type_part, member = decl
                if re.search(r"\b(Mutex|CondVar)\b", type_part):
                    continue  # the capability / its condition variable
                if "atomic" in type_part:
                    continue  # lock-free by construction
                annotated = ("PGASM_GUARDED_BY" in lines[i]
                             or "PGASM_PT_GUARDED_BY" in lines[i])
                if annotated or waived(lines, i, "guard"):
                    continue
                finding(path, i + 1, "W010", "guard",
                        f"member '{member}' of mutex-owning class '{name}' "
                        "has no PGASM_GUARDED_BY annotation — declare its "
                        "lock, make it atomic, or waive with "
                        "`pgasm-lint: allow(guard): <reason>`")


# --------------------------------------------------------------------------
# W011: checkpoint/manifest write confinement
# --------------------------------------------------------------------------

# A write-capable file open on one line: std::ofstream is always a write;
# std::fstream counts only with an out/trunc/app open mode; fopen only with
# a "w…"/"a…" mode string.
CKPT_OPEN_RE = re.compile(r"\bstd::ofstream\b|\bstd::fstream\b|\bfopen\s*\(")
CKPT_PATH_HINT_RE = re.compile(r"(?i)\.pgck|\.pgmf|\.ckpt|checkpoint|manifest")
CKPT_ALLOWED = {Path("core/wire.cpp")}


def check_w011() -> None:
    targets = src_files(".cpp", ".hpp")
    if TESTS.is_dir():
        targets += sorted(TESTS.rglob("*.cpp")) + sorted(TESTS.rglob("*.hpp"))
    for path in targets:
        try:
            if path.relative_to(SRC) in CKPT_ALLOWED:
                continue
        except ValueError:
            # A tests/ file: never exempt, but the lint fixture mini-trees
            # seed violations on purpose.
            if "lint_fixtures" in path.parts:
                continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = CKPT_OPEN_RE.search(line)
            if not m:
                continue
            if not CKPT_PATH_HINT_RE.search(line):
                continue
            token = m.group(0)
            if token == "std::fstream" and not re.search(
                    r"\bios(?:_base)?::(?:out|trunc|app)\b", line):
                continue  # read-only inspection of a checkpoint file
            if token.startswith("fopen") and not re.search(r"\"[wa]", line):
                continue
            if waived(lines, i, "raw-ckpt-write"):
                continue
            finding(path, i + 1, "W011", "raw-ckpt-write",
                    "raw file write to a checkpoint/manifest path bypasses "
                    "the integrity frame; persist through encode_* + "
                    "core::save_frame_atomic (version byte + CRC32 + fsync "
                    "+ atomic rename) or waive deliberate corruption with "
                    "`pgasm-lint: allow(raw-ckpt-write): <reason>`")


# --------------------------------------------------------------------------
# W012: metric-prefix registration
# --------------------------------------------------------------------------

# W003 checks the *shape* of instrumentation names and skips src/obs (the
# registry's own code); W012 checks that the *prefix* of every registered
# metric, src/obs included, belongs to the SUBSYSTEMS registry. The two can
# double-report an unknown prefix outside obs — that is fine, both fail CI.


def check_w012() -> None:
    for path in src_files(".cpp", ".hpp"):
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for m in METRIC_RE.finditer(line):
                name = m.group(2)
                if waived(lines, i, "metric-prefix"):
                    continue
                prefix = name.split(".")[0]
                if prefix not in SUBSYSTEMS:
                    finding(path, i + 1, "W012", "metric-prefix",
                            f"metric {name!r} prefix {prefix!r} is not a "
                            "registered subsystem — fix the typo or add the "
                            "subsystem to SUBSYSTEMS in tools/lint/"
                            "pgasm_lint.py in the same change")


# --------------------------------------------------------------------------
# W013: raw process/shared-memory syscall confinement
# --------------------------------------------------------------------------

# The multi-process transport is the one place that may fork, map shared
# memory, signal, reap, or open sockets: every other layer must stay
# process-model-agnostic so the same protocol code runs over rank threads
# and rank processes alike. A raw syscall elsewhere is either transport
# logic leaking upward or an untracked side door the fault injector and the
# reaper know nothing about.
PROC_SYSCALL_RE = re.compile(
    # Not a member call / qualified name (t.kill(), Task::fork()), and not
    # a declaration of a same-named method (void kill() {...}).
    r"(?<![\w:.>])(?<!void )(?<!int )(?<!bool )(?<!auto )(?:::\s*)?"
    r"(fork|vfork|mmap|munmap|shm_open|shm_unlink|mkstemp|"
    r"waitpid|wait4|kill|killpg|raise|sigaction|"
    r"socket|bind|connect|listen|accept|socketpair)\s*\(")


def check_w013() -> None:
    for path in src_files(".cpp", ".hpp"):
        rel = path.relative_to(SRC)
        if rel.parts[0] == "vmpi":
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = PROC_SYSCALL_RE.search(line)
            if not m:
                continue
            if waived(lines, i, "raw-proc"):
                continue
            finding(path, i + 1, "W013", "raw-proc",
                    f"raw {m.group(1)}() outside src/vmpi/ — process, "
                    "shared-memory and socket syscalls belong to the "
                    "transport layer (src/vmpi/); route through it or add "
                    "`pgasm-lint: allow(raw-proc): <reason>`")


# --------------------------------------------------------------------------
# W014: explicit memory orders / raw-atomic confinement
# --------------------------------------------------------------------------

# Headers that legitimately declare raw std::atomic cells: the transport
# control blocks and rings (their orders are verified by pgasm-ringcheck
# and documented per-site) and the lock-free obs counters. Everywhere else
# a raw atomic needs a waiver stating its ordering story.
ATOMIC_APPROVED = {
    Path("vmpi/transport.hpp"),
    Path("vmpi/shm_ring.hpp"),
    Path("vmpi/ring_core.hpp"),
    Path("vmpi/thread_transport.hpp"),
    Path("obs/metrics.hpp"),
    Path("obs/trace.hpp"),
}

ATOMIC_OP_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic\s*<")


def check_w014() -> None:
    for path in src_files(".cpp", ".hpp"):
        rel = path.relative_to(SRC)
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)

            # (a) atomic operations must name their order. The argument
            # list may wrap: accept the order on the call line or the next
            # two continuation lines. `RingOrder::` counts — the ring_core
            # facade names orders through its own enum.
            for m in ATOMIC_OP_RE.finditer(line):
                window = line[m.end():]
                for j in (i + 1, i + 2):
                    if j < len(lines):
                        window += " " + strip_comments(lines[j])
                if m.group(1) == "store" and re.match(r"\s*\)", window):
                    continue  # zero-arg .store(): an unrelated accessor,
                    # an atomic store always passes a value
                if "memory_order" in window or "RingOrder::" in window:
                    continue
                if waived(lines, i, "memory-order"):
                    continue
                finding(path, i + 1, "W014", "memory-order",
                        f".{m.group(1)}() without an explicit "
                        "std::memory_order — the default seq_cst hides the "
                        "intended ordering contract; name the order (or "
                        "waive with `pgasm-lint: allow(memory-order): "
                        "<reason>` if this really wants seq_cst)")

            # (b) raw std::atomic declarations outside the approved
            # concurrency headers. References and shared_ptr wrappers are
            # uses of an already-declared cell, not new declarations.
            if rel in ATOMIC_APPROVED:
                continue
            dm = ATOMIC_DECL_RE.search(line)
            if not dm:
                continue
            after = line[dm.start():]
            if re.match(r"std::atomic\s*<[^;>]*(?:<[^<>]*>)?[^;>]*>\s*&",
                        after):
                continue  # a reference to an existing atomic
            if re.search(r"(make_shared|shared_ptr|unique_ptr)\s*<\s*"
                         r"std::atomic", line):
                continue
            if waived(lines, i, "raw-atomic"):
                continue
            finding(path, i + 1, "W014", "raw-atomic",
                    "raw std::atomic declaration outside the approved "
                    "concurrency headers — move it behind one of them or "
                    "add `pgasm-lint: allow(raw-atomic): <reason>` stating "
                    "its ordering story")


# --------------------------------------------------------------------------
# W015: wire-tag <-> protocol-table membership
# --------------------------------------------------------------------------

# W001 checks that the clustering tags carry codec annotations; W015 checks
# the structural half for EVERY tag in src/: each kTagX must be represented
# by exactly one row (kind kX) of exactly one k*Protocol table, so the
# model checker, protocol_check and the docs all see the same message set.

W015_TAG_RE = re.compile(r"(?:inline\s+)?constexpr int (kTag(\w+))\s*=")
W015_TABLE_RE = re.compile(r"\b(k\w*Protocol)\s*\[\]")
W015_KIND_RE = re.compile(r"\b\w*MsgKind::k(\w+)\b")


def protocol_table_rows() -> dict[str, dict[str, int]]:
    """Table name -> {kind suffix -> row count} for every k*Protocol array
    declared in a *protocol*.hpp under src/."""
    tables: dict[str, dict[str, int]] = {}
    for path in sorted(SRC.rglob("*protocol*.hpp")):
        text = path.read_text(encoding="utf-8", errors="replace")
        text = re.sub(r"//[^\n]*", "", text)
        for m in W015_TABLE_RE.finditer(text):
            # Body = the brace-balanced initializer after the '='.
            start = text.find("{", m.end())
            if start < 0:
                continue
            depth = 0
            end = start
            for pos in range(start, len(text)):
                if text[pos] == "{":
                    depth += 1
                elif text[pos] == "}":
                    depth -= 1
                    if depth == 0:
                        end = pos
                        break
            body = text[start:end + 1]
            rows = tables.setdefault(m.group(1), {})
            for km in W015_KIND_RE.finditer(body):
                rows[km.group(1)] = rows.get(km.group(1), 0) + 1
    return tables


def check_w015() -> None:
    tables = protocol_table_rows()
    for path in src_files(".cpp", ".hpp"):
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            m = W015_TAG_RE.search(strip_comments(raw))
            if not m:
                continue
            tag, suffix = m.group(1), m.group(2)
            homes = [(t, n) for t, rows in sorted(tables.items())
                     if (n := rows.get(suffix, 0))]
            if not homes:
                finding(path, i + 1, "W015", "tag-table",
                        f"wire tag {tag} has no row in any declarative "
                        "protocol table (k*Protocol in a *protocol*.hpp) — "
                        "an undocumented message kind that the model "
                        "checker and protocol_check cannot see")
            elif len(homes) > 1 or homes[0][1] != 1:
                where = ", ".join(f"{t} x{n}" for t, n in homes)
                finding(path, i + 1, "W015", "tag-table",
                        f"wire tag {tag} must appear in exactly one row of "
                        f"exactly one protocol table, found: {where}")


# --------------------------------------------------------------------------
# Optional clang front-end for W007/W010 facts
# --------------------------------------------------------------------------
#
# When a clang compiler is present, re-derive the W007/W010 facts from
# `-ast-dump=json` and report anything the lexer front-end missed (macro-
# hidden locks, multi-line declarations). The lexer findings always run —
# the AST pass only ADDS precision, so environments without clang (the CI
# container ships GCC only) get identical baseline behaviour.

def clang_binary() -> str | None:
    for name in ("clang++", "clang++-17", "clang++-16", "clang++-15",
                 "clang++-14", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def ast_walk(node: dict, visit) -> None:
    visit(node)
    for child in node.get("inner", []):
        if isinstance(child, dict):
            ast_walk(child, visit)


AST_CACHE_VERSION = "lint-v1"


def ast_cache_dir() -> Path:
    return REPO / "build" / ".ast_cache"


def ast_facts(clang: str, path: Path) -> list[dict] | None:
    """Lock facts from clang's AST for one file, memoised on disk.

    Facts are {kind: lock-type|lock-call, line, payload} records — pure
    functions of the file contents and the compiler — so they are cached
    under build/.ast_cache keyed by sha256(version + clang path + file
    bytes). A cache hit skips the clang invocation entirely, which is
    what makes repeated lint runs on a warm tree fast. Returns None when
    clang cannot produce an AST (the lexer facts stand); failures are
    never cached.
    """
    blob = path.read_bytes()
    key = hashlib.sha256(
        f"{AST_CACHE_VERSION}\0{clang}\0".encode() + blob).hexdigest()
    cache = ast_cache_dir() / f"{key}.json"
    if cache.is_file():
        try:
            return json.loads(cache.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            pass  # corrupt or racing entry: recompute below
    try:
        proc = subprocess.run(
            [clang, "-x", "c++", "-std=c++20", "-fsyntax-only",
             "-Xclang", "-ast-dump=json", "-I", str(SRC), str(path)],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0 or not proc.stdout:
            return None
        root = json.loads(proc.stdout)
    except (subprocess.SubprocessError, json.JSONDecodeError, OSError):
        print(f"pgasm-lint: warning: clang AST pass failed on {path}; "
              "lexer facts stand", file=sys.stderr)
        return None

    facts: list[dict] = []

    def visit(node: dict) -> None:
        kind = node.get("kind", "")
        line = (node.get("loc") or {}).get("line", 0)
        if not line:
            return
        if kind == "VarDecl":
            qual = (node.get("type") or {}).get("qualType", "")
            if RAW_LOCK_TYPE_RE.search(qual):
                facts.append(
                    {"kind": "lock-type", "line": line, "payload": qual})
        elif kind == "CXXMemberCallExpr":
            callee = ""
            for child in node.get("inner", []):
                if child.get("kind") == "MemberExpr":
                    callee = child.get("name", "")
            if callee in ("lock", "unlock", "try_lock"):
                facts.append(
                    {"kind": "lock-call", "line": line, "payload": callee})

    ast_walk(root, visit)
    try:
        cache.parent.mkdir(parents=True, exist_ok=True)
        cache.write_text(json.dumps(facts), encoding="utf-8")
    except OSError:
        pass  # cache is best-effort; the facts are still returned
    return facts


def ast_findings(files: list[Path]) -> None:
    clang = clang_binary()
    if clang is None:
        return
    seen = {(f["check"], f["path"], f["line"]) for f in FINDINGS}
    for path in files:
        if is_shim(path):
            continue
        facts = ast_facts(clang, path)
        if facts is None:
            continue
        lines = read_lines(path)
        rel = str(path.relative_to(REPO))
        for fact in facts:
            line = fact["line"]
            if line > len(lines):
                continue
            key = ("W007", rel, line)
            if key in seen or waived(lines, line - 1, "raw-lock"):
                continue
            seen.add(key)
            if fact["kind"] == "lock-type":
                finding(path, line, "W007", "raw-lock",
                        f"raw lock type {fact['payload']!r} (clang AST); use "
                        "the util::Mutex vocabulary")
            else:
                finding(path, line, "W007", "raw-lock",
                        f"raw .{fact['payload']}() call (clang AST); hold "
                        "locks through util::MutexLock scopes only")


def check_clang_ast() -> None:
    """Supplementary clang AST pass (auto-skips when clang is absent)."""
    ast_findings([p for p in concurrency_files()
                  if p.relative_to(SRC).parts[0] in ("vmpi", "obs", "core",
                                                     "util")])


# --------------------------------------------------------------------------

CHECKS = {
    "W001": check_w001,
    "W002": check_w002,
    "W003": check_w003,
    "W004": check_w004,
    "W005": check_w005,
    "W006": check_w006,
    "W007": check_w007,
    "W008": check_w008,
    "W009": check_w009,
    "W010": check_w010,
    "W011": check_w011,
    "W012": check_w012,
    "W013": check_w013,
    "W014": check_w014,
    "W015": check_w015,
}


def _run_one_check(name: str) -> list[dict]:
    """Pool worker: run one check in a forked child, return its findings.

    The child inherits REPO/SRC/TESTS (and any --root re-pointing) via
    fork. Clearing FINDINGS first means the returned batch is exactly the
    check's own findings; IDs match a serial run because finding()
    ordinals only ever count earlier findings of the SAME check.
    """
    FINDINGS.clear()
    CHECKS[name]()
    return list(FINDINGS)


def run_checks(selected: list[str]) -> None:
    """Run the selected checks, in parallel when there is more than one.

    One pool task per check, merged back in selection order, which is
    byte-identical (findings and IDs) to the serial loop. Falls back to
    serial on platforms without fork or when the pool cannot start.
    """
    if len(selected) > 1:
        try:
            ctx = multiprocessing.get_context("fork")
            workers = min(len(selected), multiprocessing.cpu_count())
            with ctx.Pool(workers) as pool:
                per_check = pool.map(_run_one_check, selected)
            FINDINGS.clear()
            for batch in per_check:
                FINDINGS.extend(batch)
            return
        except (OSError, ValueError):
            FINDINGS.clear()
    for name in selected:
        CHECKS[name]()


def emit_text(selected: list[str]) -> None:
    for f in FINDINGS:
        print(f"{f['path']}:{f['line']}: [{f['check']}/{f['slug']}] "
              f"{f['message']} [{f['id']}]")
    n = len(FINDINGS)
    print(f"pgasm-lint: {n} finding{'s' if n != 1 else ''} "
          f"({', '.join(selected)})")


def emit_json(selected: list[str]) -> None:
    print(json.dumps({
        "version": 1,
        "root": str(REPO),
        "checks": selected,
        "count": len(FINDINGS),
        "findings": FINDINGS,
    }, indent=2))


def main() -> int:
    global REPO, SRC, TESTS
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--only", metavar="WNNN", action="append",
                    help="run only these checks (repeatable)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--root", metavar="DIR", default=None,
                    help="repo root to lint (default: this script's repo); "
                    "used by the fixture tests to point at mini-trees")
    ap.add_argument("--format", choices=("text", "json"), default="text",
                    help="output format (json carries stable finding IDs)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lexer"),
                    default="auto",
                    help="fact front-end for W007-W010: clang AST when "
                    "available (auto/clang), tokenizer otherwise")
    args = ap.parse_args()

    if args.list_checks:
        for name, fn in CHECKS.items():
            print(f"{name}: {(fn.__doc__ or '').strip()}")
        return 0

    if args.root is not None:
        REPO = Path(args.root).resolve()
        SRC = REPO / "src"
        TESTS = REPO / "tests"
    if not SRC.is_dir():
        print(f"pgasm-lint: no src/ under {REPO}", file=sys.stderr)
        return 2

    selected = args.only or sorted(CHECKS)
    for name in selected:
        if name not in CHECKS:
            print(f"unknown check {name}", file=sys.stderr)
            return 2
    try:
        run_checks(selected)
        if (args.frontend in ("auto", "clang")
                and any(c in selected for c in ("W007", "W010"))):
            if args.frontend == "clang" and clang_binary() is None:
                print("pgasm-lint: --frontend=clang but no clang on PATH",
                      file=sys.stderr)
                return 2
            check_clang_ast()
    except OSError as e:
        print(f"pgasm-lint: tool error: {e}", file=sys.stderr)
        return 2

    if args.format == "json":
        emit_json(selected)
    else:
        emit_text(selected)
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
