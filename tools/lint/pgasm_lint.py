#!/usr/bin/env python3
"""pgasm-lint: project-invariant checks the generic linters can't express.

Checks
------
W001  wire-protocol hygiene: every protocol tag in core/cluster_protocol.hpp
      carries a `pgasm-wire:` annotation naming either `raw-u64` or exactly
      one encode_X/decode_X codec pair; each named pair must be declared in
      core/wire.hpp, be claimed by exactly one tag, and be exercised by a
      round-trip test under tests/ (both halves referenced).
W002  raw-comm confinement: vmpi send/recv calls are confined to the
      protocol layers (src/vmpi/ itself, core/cluster_protocol.*,
      gst/parallel_build.cpp). Anywhere else needs an explicit waiver:
      a `pgasm-lint: allow(raw-comm): <reason>` comment on or above the line.
W003  observability naming: metric names follow subsystem.noun[_verb]
      (1-2 dot-separated snake_case segments after a known subsystem);
      trace span/instant names are single snake_case tokens and their
      category is a known subsystem.
W004  hot-path allocation ban: function bodies taking an align::Workspace&
      must not allocate (no new/make_unique/make_shared/malloc, no local
      by-value std containers) — the workspace exists so the alignment inner
      loop reuses grow-only buffers.
W005  include-what-you-use (lite): public headers under src/ must directly
      include the std header for every std:: symbol they name, so any
      subset of pgasm.hpp compiles standalone.
W006  test-label audit: every registered test carries exactly one suite
      label from {unit, parallel, faults, obs, fuzz}.

Exit status: 0 when clean, 1 when any finding is reported.

Waivers: append `pgasm-lint: allow(<check>): <reason>` in a comment on the
offending line or the line above. <check> is the lowercase slug shown in
the finding, e.g. raw-comm, alloc, naming, iwyu.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
TESTS = REPO / "tests"

FINDINGS: list[str] = []


def finding(path: Path, line_no: int, check: str, slug: str, msg: str) -> None:
    rel = path.relative_to(REPO)
    FINDINGS.append(f"{rel}:{line_no}: [{check}/{slug}] {msg}")


def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def waived(lines: list[str], idx: int, slug: str) -> bool:
    """True when line idx (0-based) or the contiguous comment block above
    it carries a waiver."""
    needle = f"pgasm-lint: allow({slug})"
    if needle in lines[idx]:
        return True
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if needle in lines[j]:
            return True
        j -= 1
    return False


def strip_comments(line: str) -> str:
    """Drop // comments (good enough: no multiline comment bodies in src)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def src_files(*suffixes: str) -> list[Path]:
    out: list[Path] = []
    for s in suffixes:
        out.extend(sorted(SRC.rglob(f"*{s}")))
    return out


# --------------------------------------------------------------------------
# W001: wire tag <-> codec pairing
# --------------------------------------------------------------------------

TAG_RE = re.compile(r"inline constexpr int (kTag\w+)\s*=")
ANNOT_RE = re.compile(r"pgasm-wire:\s*(\S+)")


def check_w001() -> None:
    proto = SRC / "core" / "cluster_protocol.hpp"
    wire = SRC / "core" / "wire.hpp"
    lines = read_lines(proto)

    # Collect tag -> annotation. The annotation sits on the tag's line or on
    # the continuation comment line directly below it.
    tags: dict[str, tuple[int, str | None]] = {}
    for i, line in enumerate(lines):
        m = TAG_RE.search(line)
        if not m:
            continue
        annot = ANNOT_RE.search(line)
        if not annot and i + 1 < len(lines) and lines[i + 1].lstrip().startswith("//"):
            annot = ANNOT_RE.search(lines[i + 1])
        tags[m.group(1)] = (i + 1, annot.group(1) if annot else None)

    if not tags:
        finding(proto, 1, "W001", "wire", "no protocol tags found (kTag*)")
        return

    wire_text = (wire.read_text(encoding="utf-8")
                 if wire.exists() else "")
    test_text = "\n".join(
        p.read_text(encoding="utf-8", errors="replace")
        for p in sorted(TESTS.rglob("*.cpp")))

    claimed: dict[str, str] = {}  # codec pair -> tag
    for tag, (line_no, annot) in sorted(tags.items()):
        if annot is None:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} has no `pgasm-wire:` annotation "
                    "(name its codec pair or raw-u64)")
            continue
        if annot == "raw-u64":
            continue
        m = re.fullmatch(r"(encode_\w+)/(decode_\w+)", annot)
        if not m:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} annotation {annot!r} is neither raw-u64 nor "
                    "encode_X/decode_X")
            continue
        enc, dec = m.group(1), m.group(2)
        if annot in claimed:
            finding(proto, line_no, "W001", "wire",
                    f"{tag} claims codec pair {annot} already claimed by "
                    f"{claimed[annot]}")
        claimed[annot] = tag
        for fn in (enc, dec):
            if not re.search(rf"\b{fn}\s*\(", wire_text):
                finding(proto, line_no, "W001", "wire",
                        f"{tag} names {fn} but core/wire.hpp declares no "
                        "such codec")
        # Round-trip coverage: both halves (or the try_ decode variant)
        # must appear in a test.
        has_enc = re.search(rf"\b{enc}\s*\(|\b{enc}_payload\s*\(", test_text)
        has_dec = re.search(rf"\b(try_)?{dec}\s*\(", test_text)
        if not (has_enc and has_dec):
            finding(proto, line_no, "W001", "wire",
                    f"{tag} codec pair {annot} lacks a round-trip test "
                    "under tests/ (both halves must be exercised)")


# --------------------------------------------------------------------------
# W002: raw comm confinement
# --------------------------------------------------------------------------

COMM_CALL_RE = re.compile(
    r"\.\s*(s?send(?:_value|_payload|_vector)?|"
    r"recv(?:_value|_vector|_timeout)?)\s*(?:<[^;>]*>)?\s*\(")

COMM_ALLOWED = {
    Path("core/cluster_protocol.hpp"),
    Path("core/cluster_protocol.cpp"),
    Path("gst/parallel_build.cpp"),
}


def check_w002() -> None:
    for path in src_files(".cpp", ".hpp"):
        rel = path.relative_to(SRC)
        if rel.parts[0] == "vmpi" or rel in COMM_ALLOWED:
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = COMM_CALL_RE.search(line)
            if not m:
                continue
            # Only comm objects: require a comm-ish receiver to cut false
            # positives from unrelated send/recv-named methods.
            prefix = line[: m.start()]
            if not re.search(r"\b(comm|c|mailbox)$", prefix.rstrip()):
                continue
            if waived(lines, i, "raw-comm"):
                continue
            finding(path, i + 1, "W002", "raw-comm",
                    f"direct vmpi {m.group(1)}() outside the protocol "
                    "layer; route through core/cluster_protocol.* or add "
                    "`pgasm-lint: allow(raw-comm): <reason>`")


# --------------------------------------------------------------------------
# W003: observability naming
# --------------------------------------------------------------------------

SUBSYSTEMS = {
    "align", "assembly", "cluster", "engine", "gst", "obs", "olc",
    "pipeline", "preprocess", "scaffold", "seq", "sim", "vmpi", "wire",
}
METRIC_RE = re.compile(r"\.(counter|gauge|histogram)\(\s*\"([^\"]+)\"")
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,2}$")
TRACE_RE = re.compile(r"\bobs::(span|instant)\(\s*[^,]+,\s*\"([^\"]+)\"\s*,\s*\"([^\"]+)\"")
TOKEN_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def check_w003() -> None:
    for path in src_files(".cpp", ".hpp"):
        if path.relative_to(SRC).parts[0] == "obs":
            continue  # the registry/tracer themselves, not instrumentation
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for m in METRIC_RE.finditer(line):
                name = m.group(2)
                if waived(lines, i, "naming"):
                    continue
                if not METRIC_NAME_RE.match(name):
                    finding(path, i + 1, "W003", "naming",
                            f"metric {name!r} does not match "
                            "subsystem.noun[_verb]")
                elif name.split(".")[0] not in SUBSYSTEMS:
                    finding(path, i + 1, "W003", "naming",
                            f"metric {name!r} uses unknown subsystem "
                            f"{name.split('.')[0]!r}")
            for m in TRACE_RE.finditer(line):
                kind, name, cat = m.groups()
                if waived(lines, i, "naming"):
                    continue
                if not TOKEN_RE.match(name):
                    finding(path, i + 1, "W003", "naming",
                            f"trace {kind} name {name!r} is not a single "
                            "snake_case token")
                if cat not in SUBSYSTEMS:
                    finding(path, i + 1, "W003", "naming",
                            f"trace {kind} category {cat!r} is not a known "
                            "subsystem")


# --------------------------------------------------------------------------
# W004: Workspace hot-path allocation ban
# --------------------------------------------------------------------------

HOT_FILES = [
    SRC / "align" / "overlap.cpp",
    SRC / "align" / "overlap.hpp",
    SRC / "align" / "pairwise.cpp",
    SRC / "align" / "linear_space.cpp",
    SRC / "align" / "workspace.hpp",
    SRC / "core" / "overlap_engine.cpp",
]
ALLOC_RES = [
    (re.compile(r"\bnew\s"), "naked new"),
    (re.compile(r"\bstd::make_(unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    # A by-value local std container (declaration, not a reference/pointer
    # parameter or return type).
    (re.compile(
        r"\bstd::(vector|string|deque|map|set|unordered_map|unordered_set)\s*"
        r"(?:<[^;&*]*>)?\s+\w+\s*[({=;]"), "local heap container"),
]


def workspace_function_ranges(lines: list[str]) -> list[tuple[int, int]]:
    """(start, end) 0-based line ranges of function bodies whose signature
    mentions Workspace& — tracked with a brace counter, which is adequate
    for this codebase's formatting."""
    ranges: list[tuple[int, int]] = []
    i = 0
    while i < len(lines):
        line = strip_comments(lines[i])
        if re.search(r"\bWorkspace\s*&", line) and "(" in line:
            # Find the opening brace of the body (may be several lines on).
            j = i
            depth = 0
            body_start = None
            while j < len(lines):
                for ch in strip_comments(lines[j]):
                    if ch == "{":
                        depth += 1
                        if body_start is None:
                            body_start = j
                    elif ch == "}":
                        depth -= 1
                if body_start is not None and depth == 0:
                    ranges.append((body_start, j))
                    break
                if body_start is None and ";" in strip_comments(lines[j]):
                    break  # declaration only, no body
                j += 1
            i = j + 1
        else:
            i += 1
    return ranges


def check_w004() -> None:
    for path in HOT_FILES:
        if not path.exists():
            continue
        lines = read_lines(path)
        for start, end in workspace_function_ranges(lines):
            for i in range(start, end + 1):
                line = strip_comments(lines[i])
                for alloc_re, what in ALLOC_RES:
                    if alloc_re.search(line) and not waived(lines, i, "alloc"):
                        finding(path, i + 1, "W004", "alloc",
                                f"{what} inside a Workspace& hot-path "
                                "function; use the workspace's grow-only "
                                "buffers")


# --------------------------------------------------------------------------
# W005: include-what-you-use (lite)
# --------------------------------------------------------------------------

# std symbol -> header(s) that satisfy it. Conservative on purpose: only
# symbols whose home header is unambiguous, with <iosfwd> accepted for
# stream types named (not used) in signatures.
IWYU_MAP: dict[str, tuple[str, ...]] = {
    "std::vector": ("vector",),
    "std::string": ("string",),
    "std::string_view": ("string_view",),
    "std::deque": ("deque",),
    "std::array": ("array",),
    "std::span": ("span",),
    "std::optional": ("optional",),
    "std::function": ("functional",),
    "std::unique_ptr": ("memory",),
    "std::shared_ptr": ("memory",),
    "std::pair": ("utility",),
    "std::tuple": ("tuple",),
    "std::map": ("map",),
    "std::unordered_map": ("unordered_map",),
    "std::unordered_set": ("unordered_set",),
    "std::atomic": ("atomic",),
    "std::mutex": ("mutex",),
    "std::condition_variable": ("condition_variable",),
    "std::thread": ("thread",),
    "std::chrono": ("chrono",),
    "std::runtime_error": ("stdexcept",),
    "std::logic_error": ("stdexcept",),
    "std::invalid_argument": ("stdexcept",),
    "std::uint8_t": ("cstdint",),
    "std::uint16_t": ("cstdint",),
    "std::uint32_t": ("cstdint",),
    "std::uint64_t": ("cstdint",),
    "std::int8_t": ("cstdint",),
    "std::int32_t": ("cstdint",),
    "std::int64_t": ("cstdint",),
    "std::size_t": ("cstddef", "cstdint", "cstdio"),
    "std::byte": ("cstddef",),
    "std::ostream": ("ostream", "iosfwd", "sstream", "iostream"),
    "std::istream": ("istream", "iosfwd", "sstream", "iostream"),
}
INCLUDE_RE = re.compile(r'^\s*#include\s*<([^>]+)>')
SYM_RE = re.compile(r"\bstd::[a-z_0-9]+")


def check_w005() -> None:
    for path in src_files(".hpp"):
        lines = read_lines(path)
        includes = {m.group(1) for line in lines
                    if (m := INCLUDE_RE.match(line))}
        reported: set[str] = set()
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for m in SYM_RE.finditer(line):
                sym = m.group(0)
                headers = IWYU_MAP.get(sym)
                if headers is None or sym in reported:
                    continue
                if not includes.isdisjoint(headers):
                    continue
                if waived(lines, i, "iwyu"):
                    reported.add(sym)
                    continue
                reported.add(sym)
                finding(path, i + 1, "W005", "iwyu",
                        f"{sym} used but <{headers[0]}> not directly "
                        "included")


# --------------------------------------------------------------------------
# W006: test label audit
# --------------------------------------------------------------------------

VALID_LABELS = {"unit", "parallel", "faults", "obs", "fuzz"}
PGASM_TEST_RE = re.compile(r"^\s*pgasm_test\((\w+)(.*)\)\s*$")
PGASM_FUZZ_RE = re.compile(r"^\s*pgasm_fuzz\((\w+)\)\s*$")


def check_w006() -> None:
    cml = TESTS / "CMakeLists.txt"
    for i, line in enumerate(read_lines(cml)):
        m = PGASM_TEST_RE.match(line)
        if not m:
            continue
        name, rest = m.groups()
        labels = re.findall(r"LABELS\s+([\w;\s]+)", rest)
        toks = labels[0].split() if labels else []
        if len(toks) != 1 or toks[0] not in VALID_LABELS:
            finding(cml, i + 1, "W006", "labels",
                    f"test {name} must carry exactly one label from "
                    f"{sorted(VALID_LABELS)} (got {toks or 'none'})")
    fuzz_cml = TESTS / "fuzz" / "CMakeLists.txt"
    if fuzz_cml.exists():
        text = fuzz_cml.read_text(encoding="utf-8")
        if "LABELS fuzz" not in text:
            finding(fuzz_cml, 1, "W006", "labels",
                    "fuzz tests must be registered with LABELS fuzz")
    else:
        finding(TESTS, 1, "W006", "labels", "tests/fuzz/CMakeLists.txt missing")


# --------------------------------------------------------------------------

CHECKS = {
    "W001": check_w001,
    "W002": check_w002,
    "W003": check_w003,
    "W004": check_w004,
    "W005": check_w005,
    "W006": check_w006,
}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--only", metavar="WNNN", action="append",
                    help="run only these checks (repeatable)")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for name, fn in CHECKS.items():
            print(f"{name}: {fn.__doc__ or ''}")
        return 0

    selected = args.only or sorted(CHECKS)
    for name in selected:
        if name not in CHECKS:
            print(f"unknown check {name}", file=sys.stderr)
            return 2
        CHECKS[name]()

    for f in FINDINGS:
        print(f)
    n = len(FINDINGS)
    print(f"pgasm-lint: {n} finding{'s' if n != 1 else ''} "
          f"({', '.join(selected)})")
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
