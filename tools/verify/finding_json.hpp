// Shared --format=json emitter for the verify tools (pgasm-model,
// pgasm-ringcheck), matching pgasm-lint's finding schema so one dashboard
// can ingest all three: {version, root, checks, count, findings:[{id,
// check, slug, path, line, message}]}. IDs are a stable hash of what the
// finding says (check:slug:path:message + an occurrence ordinal), never of
// where, so they survive unrelated edits — the same contract pgasm-lint
// documents for its PL- IDs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace pgasm::verify {

struct Finding {
  std::string check;    ///< e.g. "PM1" (deadlock), "PR2" (data race)
  std::string slug;     ///< kebab-case category, e.g. "deadlock"
  std::string path;     ///< repo-relative anchor for the finding
  int line = 0;         ///< 1-based anchor line (0 = whole file)
  std::string message;  ///< one-line statement of the violation
};

/// FNV-1a 64-bit, the basis for stable finding IDs.
inline std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// "PM-" / "PR-" + 12 hex chars of the content hash.
inline std::string finding_id(const char* prefix, const Finding& f,
                              int ordinal) {
  const std::string basis = f.check + ":" + f.slug + ":" + f.path + ":" +
                            f.message + "#" + std::to_string(ordinal);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%012llx",
                static_cast<unsigned long long>(fnv1a(basis) & 0xffffffffffffull));
  return std::string(prefix) + "-" + buf;
}

inline void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Render the pgasm-lint-compatible JSON document.
inline std::string findings_json(const char* id_prefix,
                                 const std::string& root,
                                 const std::vector<std::string>& checks,
                                 const std::vector<Finding>& findings) {
  std::string out = "{\n  \"version\": 1,\n  \"root\": \"";
  append_json_escaped(out, root);
  out += "\",\n  \"checks\": [";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    append_json_escaped(out, checks[i]);
    out += '"';
  }
  out += "],\n  \"count\": " + std::to_string(findings.size()) +
         ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    int ordinal = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (findings[j].check == f.check && findings[j].path == f.path &&
          findings[j].message == f.message) {
        ++ordinal;
      }
    }
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n      \"id\": \"" + finding_id(id_prefix, f, ordinal) +
           "\",\n      \"check\": \"";
    append_json_escaped(out, f.check);
    out += "\",\n      \"slug\": \"";
    append_json_escaped(out, f.slug);
    out += "\",\n      \"path\": \"";
    append_json_escaped(out, f.path);
    out += "\",\n      \"line\": " + std::to_string(f.line) +
           ",\n      \"message\": \"";
    append_json_escaped(out, f.message);
    out += "\"\n    }";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace pgasm::verify
