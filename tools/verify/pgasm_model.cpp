// pgasm-model CLI: exhaustive protocol model checking (see model.hpp).
//
//   pgasm-model [--workers=N] [--drops=K] [--crashes=C] [--retransmits=R]
//               [--bug=NAME] [--list-bugs] [--format=text|json] [--root=DIR]
//
// Exit codes follow pgasm-lint: 0 clean, 1 property violation, 2 tool error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "finding_json.hpp"
#include "model.hpp"

namespace {

using pgasm::verify::Finding;
using pgasm::verify::ModelBug;
using pgasm::verify::ModelConfig;
using pgasm::verify::ModelResult;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: pgasm-model [--workers=N] [--drops=K] [--crashes=C]\n"
      "                   [--retransmits=R] [--bug=NAME] [--list-bugs]\n"
      "                   [--format=text|json] [--root=DIR]\n"
      "\n"
      "Exhaustively model-check the clustering protocol declared in\n"
      "src/core/cluster_protocol.hpp: 1 master x N workers x a bounded\n"
      "lossy channel (<=K drops, <=C crashes). Proves deadlock freedom\n"
      "(P1), termination co-reachability (P2), declared-protocol\n"
      "conformance (P3) and loss tolerance (P4), or prints a minimal\n"
      "counterexample schedule. --bug seeds a known protocol bug and the\n"
      "checker must catch it (exit 1).\n");
  return code;
}

const char* property_slug(const std::string& property) {
  if (property == "P1") return "deadlock";
  if (property == "P2") return "livelock";
  if (property == "P3") return "undeclared-protocol";
  if (property == "P4") return "stranded-worker";
  return "violation";
}

void print_text(const ModelConfig& cfg, const ModelResult& r) {
  std::printf(
      "pgasm-model: workers=%d drops=%d crashes=%d retransmits=%d bug=%s\n",
      cfg.workers, cfg.drops, cfg.crashes,
      cfg.retransmits >= 0 ? cfg.retransmits : cfg.drops,
      pgasm::verify::model_bug_name(cfg.bug));
  std::printf(
      "pgasm-model: %llu reachable states, %llu edges, %llu finals "
      "(+%llu abort finals)%s\n",
      static_cast<unsigned long long>(r.states),
      static_cast<unsigned long long>(r.edges),
      static_cast<unsigned long long>(r.finals),
      static_cast<unsigned long long>(r.abort_finals),
      r.exhausted ? ", exhaustive" : "");
  if (r.ok) {
    std::printf(
        "pgasm-model: OK — P1 deadlock freedom, P2 termination "
        "co-reachability, P3 declared-protocol conformance, P4 loss "
        "tolerance all hold\n");
    return;
  }
  std::printf("pgasm-model: VIOLATION of %s: %s\n", r.property.c_str(),
              r.message.c_str());
  std::printf("pgasm-model: counterexample schedule (%zu steps):\n",
              r.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, r.trace[i].c_str());
  }
}

void print_json(const std::string& root, const ModelConfig& cfg,
                const ModelResult& r) {
  std::vector<Finding> findings;
  if (!r.ok) {
    Finding f;
    f.check = "PM" + r.property.substr(1);
    f.slug = property_slug(r.property);
    f.path = "src/core/cluster_protocol.hpp";
    f.message = r.message;
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      f.message += "; step " + std::to_string(i + 1) + ": " + r.trace[i];
    }
    findings.push_back(std::move(f));
  }
  const std::vector<std::string> checks = {"PM1", "PM2", "PM3", "PM4"};
  std::fputs(
      pgasm::verify::findings_json("PM", root, checks, findings).c_str(),
      stdout);
  (void)cfg;
}

}  // namespace

int main(int argc, char** argv) {
  ModelConfig cfg;
  std::string format = "text";
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto intval = [&](const char* prefix, int* out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = std::atoi(arg.c_str() + std::strlen(prefix));
      return true;
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-bugs") {
      for (const auto& fx : pgasm::verify::model_bug_fixtures()) {
        std::printf("%s\t(workers=%d drops=%d crashes=%d, expect %s)\n",
                    pgasm::verify::model_bug_name(fx.bug), fx.config.workers,
                    fx.config.drops, fx.config.crashes,
                    fx.expected_property);
      }
      return 0;
    }
    if (intval("--workers=", &cfg.workers) || intval("--drops=", &cfg.drops) ||
        intval("--crashes=", &cfg.crashes) ||
        intval("--retransmits=", &cfg.retransmits)) {
      continue;
    }
    if (arg.rfind("--bug=", 0) == 0) {
      if (!pgasm::verify::parse_model_bug(arg.substr(6), &cfg.bug)) {
        std::fprintf(stderr, "pgasm-model: unknown bug '%s'\n",
                     arg.c_str() + 6);
        return 2;
      }
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "pgasm-model: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      continue;
    }
    std::fprintf(stderr, "pgasm-model: unknown argument '%s'\n", arg.c_str());
    return usage(2);
  }
  if (cfg.workers < 1 || cfg.workers > 3) {
    std::fprintf(stderr, "pgasm-model: --workers must be 1..3\n");
    return 2;
  }

  const ModelResult r = pgasm::verify::run_model(cfg);
  if (!r.exhausted && r.property.empty()) {
    std::fprintf(stderr, "pgasm-model: %s\n",
                 r.message.empty() ? "exploration did not finish"
                                   : r.message.c_str());
    return 2;
  }
  if (format == "json") {
    print_json(root, cfg, r);
  } else {
    print_text(cfg, r);
  }
  return r.ok ? 0 : 1;
}
