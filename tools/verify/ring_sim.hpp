// pgasm-ringcheck: memory-model interleaving checking of the SPSC shm ring
// core (src/vmpi/ring_core.hpp). The checker instantiates the REAL
// RingCore<F> algorithm with a virtual-scheduler facade: every cross-thread
// atomic access becomes a scheduling point, atomic stores sit in a
// per-thread store buffer until a separately-scheduled flush commits them
// (so a reader can observe the pre-store value arbitrarily late), and
// happens-before is tracked with vector clocks — a release store publishes
// the storing thread's clock, an acquire load that reads it joins. Plain
// accesses to the ring bytes are checked FastTrack-style: any two
// unordered accesses to the same slot where one is a write is a data race
// (the C++ behaviour would be undefined — a fork-killed or racing peer can
// observe torn bytes). All interleavings of one producer pushing
// `total_bytes` distinct bytes and one consumer popping them through a
// `cap`-byte ring (small enough to force slot reuse) are enumerated by
// stateless replay DFS.
//
// Checked per schedule:
//   - no data race on any ring byte (vector-clock/FastTrack),
//   - cursor monotonicity: every committed cursor store strictly advances,
//   - no lost/duplicated/reordered bytes: the popped sequence equals the
//     pushed sequence and the final cursors equal total_bytes,
//   - no wedge: the two threads cannot both be stuck with nothing
//     schedulable.
//
// Mutation testing: weakening any one of the four acquire/release sites to
// relaxed (the checker overrides the order the real code declares for that
// site only) must produce a violation with an interleaving trace — proving
// the checker actually guards each declared order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pgasm::verify {

/// Which declared acquire/release site to weaken to relaxed. The two
/// declared-relaxed sites (own-cursor loads) are not mutation targets:
/// they are already the weakest order.
enum class RingMutation {
  kNone,
  kPushLoadHead,   ///< producer's acquire load of head -> relaxed
  kPushStoreTail,  ///< producer's release store of tail -> relaxed
  kPopLoadTail,    ///< consumer's acquire load of tail -> relaxed
  kPopStoreHead,   ///< consumer's release store of head -> relaxed
};

const char* ring_mutation_name(RingMutation m);

/// Parse a --mutate= name; returns false for unknown names.
bool parse_ring_mutation(const std::string& name, RingMutation* out);

struct RingSimConfig {
  RingMutation mutate = RingMutation::kNone;
  std::size_t cap = 2;   ///< ring capacity in bytes (forces slot reuse)
  int total_bytes = 3;   ///< distinct bytes pushed end to end
  std::uint64_t max_schedules = 2'000'000;  ///< explosion guard (tool error)
  int max_steps = 100'000;  ///< per-schedule step guard (tool error)
};

struct RingSimResult {
  bool ok = false;
  bool exhausted = false;      ///< every schedule was enumerated
  std::uint64_t schedules = 0; ///< schedules fully executed
  std::uint64_t decisions = 0; ///< scheduling decisions taken overall
  std::string violation;       ///< slug, e.g. "data-race", empty if ok
  std::string message;         ///< one-line statement of the violation
  std::vector<std::string> trace;  ///< event log of the violating schedule
};

/// Enumerate all interleavings and check the properties above. Stops at
/// the first violation (with the schedule's event trace filled in).
RingSimResult run_ring_sim(const RingSimConfig& config);

}  // namespace pgasm::verify
