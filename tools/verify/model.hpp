// pgasm-model: exhaustive explicit-state model checking of the clustering
// protocol (1 master x N workers x a bounded lossy channel), built directly
// on the declarative tables in core/cluster_protocol.hpp. DESIGN.md §15
// documents the abstraction; this header is the library API (the CLI in
// pgasm_model.cpp and tests/test_verify_model.cpp both link it).
//
// The model: each worker is the declared WorkerState machine collapsed to
// its five operational modes (generating, awaiting a reply, parked, exited,
// crashed); the master is modelled through its per-worker bookkeeping (view,
// cached reply, heartbeat epoch) plus a work pool; the channel holds at most
// one in-flight instance of each message kind per worker pair (duplicate
// collapse — a retransmit merges with the copy already in flight, which
// soundly covers reordering across kinds and duplication within one), can
// drop up to `drops` messages, and up to `crashes` workers can die at any
// alive point. Every reachable state of the composed system is enumerated
// by BFS over a canonical packed-u64 encoding (worker fields sorted:
// workers are symmetric, so permutations are collapsed).
//
// Properties proved on the real tables:
//   P1 deadlock freedom — every reachable non-final state has an enabled
//      action (a final is: master finished AND every worker exited or
//      crashed; an all-workers-lost final with work remaining models the
//      master's TimeoutError abort and counts as final).
//   P2 termination co-reachability — from every reachable state some final
//      state is reachable (no livelock: the run can always finish).
//   P3 declared-protocol conformance — every message consumption in the
//      explored space maps onto a row of kWorkerRecvs/kMasterRecvs, and
//      every worker mode change maps onto a declared kWorkerTransitions
//      path (transitive closure).
//   P4 loss tolerance — no reachable state strands a live worker with an
//      exhausted retransmission budget, an empty reply queue, and an
//      unfinished master (the state in which the real await_reply throws
//      TimeoutError and the worker dies). With retransmits == drops this is
//      unreachable: message loss alone never kills a worker.
//
// On violation the checker prints a minimal counterexample: the BFS-parent
// message schedule from the initial state to the violating state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgasm::verify {

/// Seeded protocol bugs for the fixture suite: each removes one recovery
/// mechanism the real protocol relies on, and the checker must find a
/// violation with a counterexample trace.
enum class ModelBug {
  kNone,
  kNoRetransmit,      ///< worker never retransmits (budget forced to 0)
  kNoCachedReply,     ///< duplicate reports are discarded, nothing re-sent
  kNoDeathTerminate,  ///< declare_dead/zombie paths send no terminate
  kNoParkReply,       ///< the park decision is never sent (nor cached)
  kUndeclaredRecv,    ///< kWorkerRecvs loses its (kShutdown, kPing) row
  kNoFinalAbort,      ///< the all-workers-lost abort is not a final state
};

const char* model_bug_name(ModelBug bug);

/// Parse a --bug= name; returns false for unknown names.
bool parse_model_bug(const std::string& name, ModelBug* out);

struct ModelConfig {
  int workers = 2;      ///< N, 1..3
  int drops = 1;        ///< K, channel drop budget, 0..3
  int crashes = 1;      ///< worker crash budget, 0..3
  int retransmits = -1; ///< per-batch retransmit budget R; -1 = drops
  ModelBug bug = ModelBug::kNone;
  std::uint64_t max_states = 30'000'000;  ///< explosion guard (tool error)
};

struct ModelResult {
  bool ok = false;          ///< all checked properties hold
  bool exhausted = false;   ///< the full state space was explored
  std::uint64_t states = 0;
  std::uint64_t edges = 0;
  std::uint64_t finals = 0;        ///< normal completion states
  std::uint64_t abort_finals = 0;  ///< all-lost abort states
  std::string property;     ///< violated property ("P1".."P4"), empty if ok
  std::string message;      ///< one-line statement of the violation
  std::vector<std::string> trace;  ///< schedule from init to the violation
};

/// Exhaustively explore the composed state space and check P1-P4.
/// Stops at the first violation (with its counterexample trace filled in).
ModelResult run_model(const ModelConfig& config);

/// One row of the seeded-bug fixture table: the bug, the config that
/// exposes it, and the property expected to catch it.
struct ModelBugFixture {
  ModelBug bug;
  ModelConfig config;
  const char* expected_property;
};

/// The fixture table driven by `pgasm-model --bug=...` and ctest.
std::vector<ModelBugFixture> model_bug_fixtures();

}  // namespace pgasm::verify
