// pgasm-ringcheck CLI: memory-model interleaving checking of the SPSC shm
// ring core (see ring_sim.hpp).
//
//   pgasm-ringcheck [--mutate=SITE] [--cap=N] [--bytes=N] [--list-mutations]
//                   [--format=text|json] [--root=DIR]
//
// Exit codes follow pgasm-lint: 0 clean, 1 violation, 2 tool error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "finding_json.hpp"
#include "ring_sim.hpp"

namespace {

using pgasm::verify::Finding;
using pgasm::verify::RingMutation;
using pgasm::verify::RingSimConfig;
using pgasm::verify::RingSimResult;

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: pgasm-ringcheck [--mutate=SITE] [--cap=N] [--bytes=N]\n"
      "                       [--list-mutations] [--format=text|json]\n"
      "                       [--root=DIR]\n"
      "\n"
      "Enumerate every producer/consumer interleaving of the real\n"
      "src/vmpi/ring_core.hpp push/pop algorithm under a simulated weak\n"
      "memory model (store buffers + vector-clock happens-before) and\n"
      "check for data races, lost/duplicated/torn frames and cursor\n"
      "regressions. --mutate weakens one declared acquire/release site\n"
      "to relaxed; the checker must then find a violation (exit 1).\n");
  return code;
}

const char* check_of(const std::string& slug) {
  if (slug == "data-race") return "PR1";
  if (slug == "frame-integrity") return "PR2";
  if (slug == "cursor-regression" || slug == "cursor-final") return "PR3";
  return "PR4";  // wedge / overrun
}

}  // namespace

int main(int argc, char** argv) {
  RingSimConfig cfg;
  std::string format = "text";
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--list-mutations") {
      for (const RingMutation m :
           {RingMutation::kPushLoadHead, RingMutation::kPushStoreTail,
            RingMutation::kPopLoadTail, RingMutation::kPopStoreHead}) {
        std::printf("%s\n", pgasm::verify::ring_mutation_name(m));
      }
      return 0;
    }
    if (arg.rfind("--mutate=", 0) == 0) {
      if (!pgasm::verify::parse_ring_mutation(arg.substr(9), &cfg.mutate)) {
        std::fprintf(stderr, "pgasm-ringcheck: unknown mutation '%s'\n",
                     arg.c_str() + 9);
        return 2;
      }
      continue;
    }
    if (arg.rfind("--cap=", 0) == 0) {
      cfg.cap = static_cast<std::size_t>(std::atoi(arg.c_str() + 6));
      continue;
    }
    if (arg.rfind("--bytes=", 0) == 0) {
      cfg.total_bytes = std::atoi(arg.c_str() + 8);
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::fprintf(stderr, "pgasm-ringcheck: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      continue;
    }
    std::fprintf(stderr, "pgasm-ringcheck: unknown argument '%s'\n",
                 arg.c_str());
    return usage(2);
  }

  const RingSimResult r = pgasm::verify::run_ring_sim(cfg);
  if (!r.exhausted && r.violation.empty()) {
    std::fprintf(stderr, "pgasm-ringcheck: %s\n",
                 r.message.empty() ? "enumeration did not finish"
                                   : r.message.c_str());
    return 2;
  }

  if (format == "json") {
    std::vector<Finding> findings;
    if (!r.ok) {
      Finding f;
      f.check = check_of(r.violation);
      f.slug = r.violation;
      f.path = "src/vmpi/ring_core.hpp";
      f.message = r.message;
      for (std::size_t i = 0; i < r.trace.size(); ++i) {
        f.message += "; step " + std::to_string(i + 1) + ": " + r.trace[i];
      }
      findings.push_back(std::move(f));
    }
    const std::vector<std::string> checks = {"PR1", "PR2", "PR3", "PR4"};
    std::fputs(
        pgasm::verify::findings_json("PR", root, checks, findings).c_str(),
        stdout);
    return r.ok ? 0 : 1;
  }

  std::printf(
      "pgasm-ringcheck: mutate=%s cap=%zu bytes=%d\n",
      pgasm::verify::ring_mutation_name(cfg.mutate), cfg.cap,
      cfg.total_bytes);
  std::printf(
      "pgasm-ringcheck: %llu schedules enumerated, %llu scheduling "
      "decisions%s\n",
      static_cast<unsigned long long>(r.schedules),
      static_cast<unsigned long long>(r.decisions),
      r.exhausted ? ", exhaustive" : "");
  if (r.ok) {
    std::printf(
        "pgasm-ringcheck: OK — no data race, no lost/dup/torn frame, "
        "cursors monotonic in every interleaving\n");
    return 0;
  }
  std::printf("pgasm-ringcheck: VIOLATION (%s): %s\n", r.violation.c_str(),
              r.message.c_str());
  std::printf("pgasm-ringcheck: interleaving trace (%zu events):\n",
              r.trace.size());
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    std::printf("  %2zu. %s\n", i + 1, r.trace[i].c_str());
  }
  return 1;
}
