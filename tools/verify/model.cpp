#include "model.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <deque>
#include <unordered_map>

#include "core/cluster_protocol.hpp"

namespace pgasm::verify {

namespace {

using pgasm::core::MasterState;
using pgasm::core::MsgKind;
using pgasm::core::WorkerState;

// --- Abstract state ---------------------------------------------------------
//
// One worker's slice of the composed state. `mode` collapses the declared
// six-state worker machine to its five operationally distinct modes: the
// kSendReport/kAlign/kApplyReply states are transient compute phases with
// no protocol choice, so kGenerate..kApplyReply fold into kModeGenerate
// and the kAwaitReply loop splits into awaiting (capped retransmits) vs
// parked (uncapped keepalives) — the split the real await_reply makes on
// the parked flag.

enum Mode : unsigned {
  kModeGenerate = 0,
  kModeAwait = 1,
  kModeParked = 2,
  kModeExited = 3,
  kModeCrashed = 4,
};

enum View : unsigned { kViewBusy = 0, kViewParked = 1, kViewTerm = 2,
                       kViewDead = 3 };

enum Reply : unsigned { kReplyNone = 0, kReplyDispatch = 1, kReplyPark = 2,
                        kReplyTerminate = 3 };

struct Worker {
  unsigned mode = kModeGenerate;  ///< 3 bits
  unsigned view = kViewBusy;      ///< 2 bits: master's book for this worker
  unsigned answered = 0;          ///< 1 bit: current report already folded
  unsigned retx = 0;              ///< 2 bits: retransmit budget this batch
  unsigned report = 0;            ///< 1 bit: report in flight to master
  unsigned slot = kReplyNone;     ///< 2 bits: reply in flight to worker
  unsigned cached = kReplyNone;   ///< 2 bits: master's cached last reply
  unsigned ping = 0;              ///< 1 bit: heartbeat ping in flight
  unsigned ack = 0;               ///< 1 bit: heartbeat ack in flight
  unsigned hb = 0;                ///< 1 bit: master awaits this worker's ack
};

struct State {
  std::array<Worker, 3> w;
  unsigned pool = 0;   ///< unassigned work units (requeued by declare_dead)
  unsigned drops = 0;  ///< remaining channel drop budget
  unsigned crash = 0;  ///< remaining worker crash budget
};

constexpr unsigned kWorkerBits = 16;

std::uint64_t pack_worker(const Worker& w) {
  return static_cast<std::uint64_t>(w.mode) | (w.view << 3) |
         (w.answered << 5) | (w.retx << 6) | (w.report << 8) |
         (w.slot << 9) | (w.cached << 11) | (w.ping << 13) | (w.ack << 14) |
         (w.hb << 15);
}

Worker unpack_worker(std::uint64_t v) {
  Worker w;
  w.mode = v & 7u;
  w.view = (v >> 3) & 3u;
  w.answered = (v >> 5) & 1u;
  w.retx = (v >> 6) & 3u;
  w.report = (v >> 8) & 1u;
  w.slot = (v >> 9) & 3u;
  w.cached = (v >> 11) & 3u;
  w.ping = (v >> 13) & 1u;
  w.ack = (v >> 14) & 1u;
  w.hb = (v >> 15) & 1u;
  return w;
}

/// Canonical packed encoding. Workers are symmetric (every per-worker bit,
/// master-side bookkeeping included, lives in the worker field), so sorting
/// the fields collapses permutations of identical workers.
std::uint64_t pack(const State& s, int n) {
  std::array<std::uint64_t, 3> f{};
  for (int i = 0; i < n; ++i) {
    f[static_cast<std::size_t>(i)] = pack_worker(s.w[static_cast<std::size_t>(i)]);
  }
  // Tiny fixed sort network (n <= 3); std::sort trips -Warray-bounds here.
  if (n > 1 && f[0] > f[1]) std::swap(f[0], f[1]);
  if (n > 2) {
    if (f[1] > f[2]) std::swap(f[1], f[2]);
    if (f[0] > f[1]) std::swap(f[0], f[1]);
  }
  std::uint64_t out = 0;
  for (int i = 0; i < n; ++i) {
    out |= f[static_cast<std::size_t>(i)] << (static_cast<unsigned>(i) * kWorkerBits);
  }
  out |= static_cast<std::uint64_t>(s.pool) << 48;
  out |= static_cast<std::uint64_t>(s.drops) << 50;
  out |= static_cast<std::uint64_t>(s.crash) << 52;
  return out;
}

State unpack(std::uint64_t v, int n) {
  State s;
  for (int i = 0; i < n; ++i) {
    s.w[static_cast<std::size_t>(i)] =
        unpack_worker((v >> (static_cast<unsigned>(i) * kWorkerBits)) & 0xffffu);
  }
  s.pool = (v >> 48) & 3u;
  s.drops = (v >> 50) & 3u;
  s.crash = (v >> 52) & 3u;
  return s;
}

bool alive(const Worker& w) {
  return w.mode == kModeGenerate || w.mode == kModeAwait ||
         w.mode == kModeParked;
}

bool master_finished(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    const unsigned v = s.w[static_cast<std::size_t>(i)].view;
    if (v != kViewTerm && v != kViewDead) return false;
  }
  return true;
}

bool all_views_dead(const State& s, int n) {
  for (int i = 0; i < n; ++i) {
    if (s.w[static_cast<std::size_t>(i)].view != kViewDead) return false;
  }
  return true;
}

bool is_final(const State& s, int n, ModelBug bug) {
  if (!master_finished(s, n)) return false;
  for (int i = 0; i < n; ++i) {
    const unsigned m = s.w[static_cast<std::size_t>(i)].mode;
    if (m != kModeExited && m != kModeCrashed) return false;
  }
  // pool > 0 here means every owner of the remaining work died: the real
  // master throws TimeoutError ("all workers lost with work remaining").
  // That abort IS a defined final outcome; the kNoFinalAbort seeded bug
  // removes it and must surface as a P1 deadlock.
  if (s.pool > 0 && bug == ModelBug::kNoFinalAbort) return false;
  return true;
}

// --- Actions ----------------------------------------------------------------

enum class Act : std::uint8_t {
  kSendReport,
  kRetransmit,
  kKeepalive,
  kConsumePing,
  kConsumeReply,
  kDiscardStaleReply,
  kConsumeTerminateGen,
  kImpliedTerminate,
  kCrash,
  kDrainPingExited,
  kDrainReplyExited,
  kFoldFresh,
  kFoldDup,
  kFoldZombie,
  kDrainReport,
  kMasterPing,
  kMasterWake,
  kConsumeAck,
  kReap,
  kDropReport,
  kDropAck,
  kDropPing,
  kDropReply,
};

const char* act_name(Act a) {
  switch (a) {
    case Act::kSendReport: return "worker sends fresh report";
    case Act::kRetransmit: return "worker retransmits report (capped)";
    case Act::kKeepalive: return "parked worker keepalive retransmit";
    case Act::kConsumePing: return "worker answers heartbeat ping";
    case Act::kConsumeReply: return "worker consumes reply";
    case Act::kDiscardStaleReply: return "worker discards stale reply";
    case Act::kConsumeTerminateGen:
      return "worker consumes queued terminate before sending";
    case Act::kImpliedTerminate:
      return "worker takes implied terminate (master finished)";
    case Act::kCrash: return "worker crashes";
    case Act::kDrainPingExited: return "exited worker drains ping (no ack)";
    case Act::kDrainReplyExited: return "exited worker drains stale reply";
    case Act::kFoldFresh: return "master folds fresh report and replies";
    case Act::kFoldDup: return "master answers duplicate from cache";
    case Act::kFoldZombie: return "master terminates zombie reporter";
    case Act::kDrainReport: return "finished master drains report";
    case Act::kMasterPing: return "master sends heartbeat ping";
    case Act::kMasterWake: return "master wakes parked worker with dispatch";
    case Act::kConsumeAck: return "master consumes heartbeat ack";
    case Act::kReap: return "master declares silent worker dead";
    case Act::kDropReport: return "channel drops report";
    case Act::kDropAck: return "channel drops ack";
    case Act::kDropPing: return "channel drops ping";
    case Act::kDropReply: return "channel drops reply";
  }
  return "?";
}

std::uint32_t act_code(Act a, int worker) {
  return static_cast<std::uint32_t>(a) << 4 | static_cast<std::uint32_t>(worker);
}

std::string act_describe(std::uint32_t code) {
  const Act a = static_cast<Act>(code >> 4);
  return std::string(act_name(a)) + " [worker " +
         std::to_string(code & 0xf) + "]";
}

// --- Declared-table conformance (P3) ----------------------------------------

/// Bitmask of declared (state, kind) receive capabilities, built from the
/// real kWorkerRecvs/kMasterRecvs tables compiled in from
/// core/cluster_protocol.hpp. kUndeclaredRecv removes one row to prove the
/// checker notices a consumption outside the declared protocol.
struct Capabilities {
  // Index: state * 4 + (tag - 101).
  std::array<bool, 6 * 4> worker{};
  std::array<bool, 6 * 4> master{};
  // Transitive closure of kWorkerTransitions over the declared states.
  std::array<std::array<bool, 6>, 6> closure{};

  explicit Capabilities(ModelBug bug) {
    for (const auto& r : pgasm::core::kWorkerRecvs) {
      worker[static_cast<std::size_t>(r.state) * 4 +
             static_cast<std::size_t>(pgasm::core::to_tag(r.kind) - 101)] =
          true;
    }
    for (const auto& r : pgasm::core::kMasterRecvs) {
      master[static_cast<std::size_t>(r.state) * 4 +
             static_cast<std::size_t>(pgasm::core::to_tag(r.kind) - 101)] =
          true;
    }
    if (bug == ModelBug::kUndeclaredRecv) {
      worker[static_cast<std::size_t>(WorkerState::kShutdown) * 4 +
             static_cast<std::size_t>(
                 pgasm::core::to_tag(MsgKind::kPing) - 101)] = false;
    }
    for (std::size_t i = 0; i < 6; ++i) closure[i][i] = true;
    for (std::size_t pass = 0; pass < 6; ++pass) {
      for (const auto& t : pgasm::core::kWorkerTransitions) {
        const auto from = static_cast<std::size_t>(t.from);
        const auto to = static_cast<std::size_t>(t.to);
        for (std::size_t src = 0; src < 6; ++src) {
          if (closure[src][from]) closure[src][to] = true;
        }
      }
    }
  }
};

/// Declared WorkerState a model mode reports its consumptions under.
WorkerState declared_state(unsigned mode) {
  switch (mode) {
    case kModeGenerate: return WorkerState::kGenerate;
    case kModeAwait:
    case kModeParked: return WorkerState::kAwaitReply;
    default: return WorkerState::kShutdown;
  }
}

// --- Exploration ------------------------------------------------------------

struct Explorer {
  ModelConfig cfg;
  int n;
  int retx_budget;
  Capabilities caps;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<std::uint64_t> states;
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> pact;
  std::vector<std::uint8_t> final_flag;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
  ModelResult res;

  explicit Explorer(const ModelConfig& c)
      : cfg(c),
        n(c.workers),
        retx_budget(c.bug == ModelBug::kNoRetransmit
                        ? 0
                        : (c.retransmits >= 0 ? c.retransmits : c.drops)),
        caps(c.bug) {
    if (retx_budget > 3) retx_budget = 3;
  }

  std::vector<std::string> trace_to(std::uint32_t idx) {
    std::vector<std::string> out;
    while (idx != 0) {
      out.push_back(act_describe(pact[idx]));
      idx = parent[idx];
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  void violate(const char* prop, const std::string& msg, std::uint32_t at,
               const std::uint32_t* extra_act = nullptr) {
    if (!res.property.empty()) return;  // keep the first (shallowest)
    res.property = prop;
    res.message = msg;
    res.trace = trace_to(at);
    if (extra_act != nullptr) res.trace.push_back(act_describe(*extra_act));
  }

  /// P3: a message consumption must sit on a declared recv-capability row.
  void check_consumption(bool by_worker, unsigned mode_or_master_state,
                         MsgKind kind, std::uint32_t at, std::uint32_t code) {
    const std::size_t tag_ix =
        static_cast<std::size_t>(pgasm::core::to_tag(kind) - 101);
    if (by_worker) {
      const WorkerState ds = declared_state(mode_or_master_state);
      if (!caps.worker[static_cast<std::size_t>(ds) * 4 + tag_ix]) {
        violate("P3",
                std::string("worker consumes ") +
                    pgasm::core::msg_kind_name(kind) + " in state " +
                    pgasm::core::worker_state_name(ds) +
                    " with no kWorkerRecvs row declaring it",
                at, &code);
      }
    } else {
      const auto ms = static_cast<MasterState>(mode_or_master_state);
      if (!caps.master[static_cast<std::size_t>(ms) * 4 + tag_ix]) {
        violate("P3",
                std::string("master consumes ") +
                    pgasm::core::msg_kind_name(kind) + " in state " +
                    pgasm::core::master_state_name(ms) +
                    " with no kMasterRecvs row declaring it",
                at, &code);
      }
    }
  }

  /// P3b: every worker mode change must map onto a declared transition
  /// path (the model's modes are contractions of the declared states).
  void check_worker_edge(unsigned from_mode, unsigned to_mode,
                         std::uint32_t at, std::uint32_t code) {
    if (from_mode == to_mode) return;
    if (to_mode == kModeCrashed || from_mode == kModeCrashed) return;
    const auto from = static_cast<std::size_t>(declared_state(from_mode));
    const auto to = static_cast<std::size_t>(declared_state(to_mode));
    if (!caps.closure[from][to]) {
      violate("P3",
              std::string("worker moves ") +
                  pgasm::core::worker_state_name(declared_state(from_mode)) +
                  " -> " +
                  pgasm::core::worker_state_name(declared_state(to_mode)) +
                  " but kWorkerTransitions declares no such path",
              at, &code);
    }
  }

  /// The master's reply decision after folding a fresh report from `i`
  /// (mirrors master_loop: feed from the pool, else park, else terminate
  /// everyone once nothing is outstanding).
  void fold_decision(State& t, int i) {
    Worker& wi = t.w[static_cast<std::size_t>(i)];
    if (t.pool > 0) {
      --t.pool;
      wi.cached = kReplyDispatch;
      if (alive(wi)) wi.slot = kReplyDispatch;
      return;  // view stays busy: the worker holds the new unit
    }
    bool others_busy = false;
    for (int j = 0; j < n; ++j) {
      if (j != i && t.w[static_cast<std::size_t>(j)].view == kViewBusy) {
        others_busy = true;
      }
    }
    if (others_busy) {
      wi.view = kViewParked;
      if (cfg.bug == ModelBug::kNoParkReply) {
        wi.cached = kReplyNone;  // decision made but never told the worker
      } else {
        wi.cached = kReplyPark;
        if (alive(wi)) wi.slot = kReplyPark;
      }
      return;
    }
    // Nothing outstanding anywhere: terminate the sender and every parked
    // worker (master_loop's try_terminate after the final fold).
    for (int j = 0; j < n; ++j) {
      Worker& wj = t.w[static_cast<std::size_t>(j)];
      if (j == i || wj.view == kViewParked) {
        wj.view = kViewTerm;
        wj.cached = kReplyTerminate;
        if (alive(wj)) wj.slot = kReplyTerminate;
      }
    }
  }

  /// Enumerate every enabled action of `s`; call sink(next, code, ...) for
  /// each successor. Returns the number of enabled actions.
  template <typename Sink>
  int expand(const State& s, std::uint32_t at, Sink&& sink) {
    int enabled = 0;
    const bool finished = master_finished(s, n);
    const auto emit = [&](const State& t, Act a, int i) {
      ++enabled;
      sink(t, act_code(a, i));
    };

    bool any_report = false;
    for (int i = 0; i < n; ++i) {
      if (s.w[static_cast<std::size_t>(i)].report) any_report = true;
    }

    for (int i = 0; i < n; ++i) {
      const Worker& w = s.w[static_cast<std::size_t>(i)];
      const auto wi = static_cast<std::size_t>(i);

      // -- Worker actions.
      if (w.mode == kModeGenerate) {
        if (w.slot == kReplyTerminate) {
          State t = s;
          check_consumption(true, w.mode, MsgKind::kReply, at,
                            act_code(Act::kConsumeTerminateGen, i));
          check_worker_edge(w.mode, kModeExited, at,
                            act_code(Act::kConsumeTerminateGen, i));
          t.w[wi].slot = kReplyNone;
          t.w[wi].mode = kModeExited;
          emit(t, Act::kConsumeTerminateGen, i);
        } else if (w.slot != kReplyNone) {
          // Stale duplicate reply queued before the next send: the real
          // consume_pending_terminate discards it by seq.
          State t = s;
          check_consumption(true, w.mode, MsgKind::kReply, at,
                            act_code(Act::kDiscardStaleReply, i));
          t.w[wi].slot = kReplyNone;
          emit(t, Act::kDiscardStaleReply, i);
        } else {
          State t = s;
          check_worker_edge(w.mode, kModeAwait, at,
                            act_code(Act::kSendReport, i));
          t.w[wi].mode = kModeAwait;
          t.w[wi].report = 1;
          t.w[wi].answered = 0;
          t.w[wi].retx = static_cast<unsigned>(retx_budget);
          emit(t, Act::kSendReport, i);
        }
      }
      if (w.mode == kModeAwait && w.report == 0 && w.slot == kReplyNone &&
          w.retx > 0) {
        State t = s;
        t.w[wi].report = 1;
        --t.w[wi].retx;
        emit(t, Act::kRetransmit, i);
      }
      if (w.mode == kModeParked && w.report == 0 && w.slot == kReplyNone &&
          !finished) {
        State t = s;
        t.w[wi].report = 1;
        emit(t, Act::kKeepalive, i);
      }
      if (alive(w) && w.ping) {
        State t = s;
        check_consumption(true, w.mode, MsgKind::kPing, at,
                          act_code(Act::kConsumePing, i));
        t.w[wi].ping = 0;
        t.w[wi].ack = 1;
        emit(t, Act::kConsumePing, i);
      }
      if ((w.mode == kModeAwait || w.mode == kModeParked) &&
          w.slot != kReplyNone) {
        State t = s;
        const std::uint32_t code = act_code(Act::kConsumeReply, i);
        check_consumption(true, w.mode, MsgKind::kReply, at, code);
        t.w[wi].slot = kReplyNone;
        unsigned to = w.mode;
        if (w.slot == kReplyDispatch) to = kModeGenerate;
        if (w.slot == kReplyPark) to = kModeParked;
        if (w.slot == kReplyTerminate) to = kModeExited;
        check_worker_edge(w.mode, to, at, code);
        t.w[wi].mode = to;
        emit(t, Act::kConsumeReply, i);
      }
      if ((w.mode == kModeAwait || w.mode == kModeParked) && finished &&
          w.slot == kReplyNone) {
        State t = s;
        check_worker_edge(w.mode, kModeExited, at,
                          act_code(Act::kImpliedTerminate, i));
        t.w[wi].mode = kModeExited;
        emit(t, Act::kImpliedTerminate, i);
      }
      if (alive(w) && s.crash > 0) {
        State t = s;
        t.w[wi].mode = kModeCrashed;
        // A crashed rank's mailbox is inert: queued messages to it vanish.
        t.w[wi].ping = 0;
        t.w[wi].slot = kReplyNone;
        --t.crash;
        emit(t, Act::kCrash, i);
      }
      if (w.mode == kModeExited && w.ping) {
        State t = s;
        check_consumption(true, w.mode, MsgKind::kPing, at,
                          act_code(Act::kDrainPingExited, i));
        t.w[wi].ping = 0;  // drained WITHOUT an ack
        emit(t, Act::kDrainPingExited, i);
      }
      if (w.mode == kModeExited && w.slot != kReplyNone) {
        State t = s;
        check_consumption(true, w.mode, MsgKind::kReply, at,
                          act_code(Act::kDrainReplyExited, i));
        t.w[wi].slot = kReplyNone;
        emit(t, Act::kDrainReplyExited, i);
      }

      // -- Master actions.
      if (w.report) {
        State t = s;
        t.w[wi].report = 0;
        if (finished) {
          check_consumption(false,
                            static_cast<unsigned>(MasterState::kTerminate),
                            MsgKind::kReport, at,
                            act_code(Act::kDrainReport, i));
          emit(t, Act::kDrainReport, i);
        } else {
          check_consumption(false, static_cast<unsigned>(MasterState::kFold),
                            MsgKind::kReport, at, act_code(Act::kFoldDup, i));
          if (w.view == kViewDead || w.view == kViewTerm) {
            // Zombie: a report from a written-off worker. Fold is
            // idempotent; the master's answer is a (re-)terminate.
            if (cfg.bug != ModelBug::kNoDeathTerminate && alive(t.w[wi])) {
              t.w[wi].slot = kReplyTerminate;
            }
            emit(t, Act::kFoldZombie, i);
          } else if (w.answered) {
            // Duplicate of an already-folded report: re-send the cache.
            if (cfg.bug != ModelBug::kNoCachedReply &&
                w.cached != kReplyNone && alive(t.w[wi])) {
              t.w[wi].slot = w.cached;
            }
            emit(t, Act::kFoldDup, i);
          } else {
            t.w[wi].answered = 1;
            fold_decision(t, i);
            emit(t, Act::kFoldFresh, i);
          }
        }
      }
      if (!finished && !any_report && w.hb == 0 &&
          (w.view == kViewBusy || w.view == kViewParked)) {
        State t = s;
        t.w[wi].hb = 1;
        if (alive(w)) t.w[wi].ping = 1;  // sends to the dead are absorbed
        emit(t, Act::kMasterPing, i);
      }
      if (s.pool > 0 && w.view == kViewParked) {
        State t = s;
        --t.pool;
        t.w[wi].view = kViewBusy;
        t.w[wi].cached = kReplyDispatch;
        if (alive(w)) t.w[wi].slot = kReplyDispatch;
        emit(t, Act::kMasterWake, i);
      }
      if (w.ack) {
        State t = s;
        const auto ms = finished ? MasterState::kTerminate
                        : w.hb   ? MasterState::kHeartbeat
                                 : MasterState::kDispatch;
        check_consumption(false, static_cast<unsigned>(ms), MsgKind::kAck, at,
                          act_code(Act::kConsumeAck, i));
        t.w[wi].ack = 0;
        t.w[wi].hb = 0;
        emit(t, Act::kConsumeAck, i);
      }
      if (w.hb && w.ping == 0 && w.ack == 0 && w.report == 0 &&
          (w.view == kViewBusy || w.view == kViewParked)) {
        State t = s;
        t.w[wi].hb = 0;
        if (w.view == kViewBusy) ++t.pool;  // requeue the held unit
        t.w[wi].view = kViewDead;
        if (cfg.bug != ModelBug::kNoDeathTerminate && alive(w)) {
          t.w[wi].slot = kReplyTerminate;
        }
        emit(t, Act::kReap, i);
      }

      // -- Channel drop actions.
      if (s.drops > 0) {
        if (w.report) {
          State t = s;
          t.w[wi].report = 0;
          --t.drops;
          emit(t, Act::kDropReport, i);
        }
        if (w.ack) {
          State t = s;
          t.w[wi].ack = 0;
          --t.drops;
          emit(t, Act::kDropAck, i);
        }
        if (w.ping) {
          State t = s;
          t.w[wi].ping = 0;
          --t.drops;
          emit(t, Act::kDropPing, i);
        }
        if (w.slot != kReplyNone) {
          State t = s;
          t.w[wi].slot = kReplyNone;
          --t.drops;
          emit(t, Act::kDropReply, i);
        }
      }
    }
    return enabled;
  }

  /// P4: the state in which the real await_reply gives up and throws —
  /// a live waiting worker with no retransmit budget left, nothing queued
  /// for it, its report gone, and a master that has not finished.
  void check_stranded(const State& s, std::uint32_t at) {
    if (master_finished(s, n)) return;
    for (int i = 0; i < n; ++i) {
      const Worker& w = s.w[static_cast<std::size_t>(i)];
      if (w.mode == kModeAwait && w.retx == 0 && w.report == 0 &&
          w.slot == kReplyNone) {
        violate("P4",
                "worker " + std::to_string(i) +
                    " is stranded: retransmission budget exhausted, no "
                    "reply queued, report gone, master unfinished — the "
                    "real await_reply throws TimeoutError here and message "
                    "loss has killed a healthy worker",
                at);
        return;
      }
    }
  }

  void run() {
    State init;
    for (int i = 0; i < n; ++i) {
      init.w[static_cast<std::size_t>(i)].retx =
          static_cast<unsigned>(retx_budget);
    }
    init.drops = static_cast<unsigned>(cfg.drops);
    init.crash = static_cast<unsigned>(cfg.crashes);

    const std::uint64_t k0 = pack(init, n);
    index.emplace(k0, 0);
    states.push_back(k0);
    parent.push_back(0);
    pact.push_back(0);
    final_flag.push_back(is_final(init, n, cfg.bug) ? 1 : 0);

    for (std::uint32_t at = 0; at < states.size(); ++at) {
      if (states.size() > cfg.max_states) {
        res.message = "state space exceeds max_states";
        return;
      }
      const State s = unpack(states[at], n);
      check_stranded(s, at);
      const int enabled = expand(s, at, [&](const State& t,
                                            std::uint32_t code) {
        const std::uint64_t key = pack(t, n);
        auto [it, inserted] = index.emplace(
            key, static_cast<std::uint32_t>(states.size()));
        if (inserted) {
          states.push_back(key);
          parent.push_back(at);
          pact.push_back(code);
          final_flag.push_back(is_final(t, n, cfg.bug) ? 1 : 0);
        }
        edge_list.emplace_back(at, it->second);
      });
      if (enabled == 0 && !final_flag[at]) {
        violate("P1",
                "deadlock: no action is enabled and the state is not a "
                "declared final (all workers done or the all-lost abort)",
                at);
      }
      if (!res.property.empty()) break;
    }

    res.states = states.size();
    res.edges = edge_list.size();
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (!final_flag[i]) continue;
      const State s = unpack(states[i], n);
      if (s.pool > 0 || all_views_dead(s, n)) {
        ++res.abort_finals;
      } else {
        ++res.finals;
      }
    }
    if (!res.property.empty()) return;
    res.exhausted = true;
    check_coreachability();
    res.ok = res.property.empty();
  }

  /// P2: every reachable state can still reach a final (no livelock).
  /// Backward BFS from the finals over a reverse-CSR of the edge list.
  void check_coreachability() {
    const std::uint32_t ns = static_cast<std::uint32_t>(states.size());
    std::vector<std::uint32_t> off(ns + 1, 0);
    for (const auto& [from, to] : edge_list) {
      (void)from;
      ++off[to + 1];
    }
    for (std::uint32_t i = 0; i < ns; ++i) off[i + 1] += off[i];
    std::vector<std::uint32_t> rev(edge_list.size());
    {
      std::vector<std::uint32_t> cur(off.begin(), off.end() - 1);
      for (const auto& [from, to] : edge_list) rev[cur[to]++] = from;
    }
    std::vector<std::uint8_t> good(ns, 0);
    std::deque<std::uint32_t> q;
    for (std::uint32_t i = 0; i < ns; ++i) {
      if (final_flag[i]) {
        good[i] = 1;
        q.push_back(i);
      }
    }
    while (!q.empty()) {
      const std::uint32_t v = q.front();
      q.pop_front();
      for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
        if (!good[rev[e]]) {
          good[rev[e]] = 1;
          q.push_back(rev[e]);
        }
      }
    }
    for (std::uint32_t i = 0; i < ns; ++i) {
      if (!good[i]) {
        violate("P2",
                "livelock: from this reachable state no final state is "
                "reachable — the run can never finish",
                i);
        return;
      }
    }
  }
};

}  // namespace

const char* model_bug_name(ModelBug bug) {
  switch (bug) {
    case ModelBug::kNone: return "none";
    case ModelBug::kNoRetransmit: return "no-retransmit";
    case ModelBug::kNoCachedReply: return "no-cached-reply";
    case ModelBug::kNoDeathTerminate: return "no-death-terminate";
    case ModelBug::kNoParkReply: return "no-park-reply";
    case ModelBug::kUndeclaredRecv: return "undeclared-recv";
    case ModelBug::kNoFinalAbort: return "no-final-abort";
  }
  return "?";
}

bool parse_model_bug(const std::string& name, ModelBug* out) {
  for (const ModelBug b :
       {ModelBug::kNone, ModelBug::kNoRetransmit, ModelBug::kNoCachedReply,
        ModelBug::kNoDeathTerminate, ModelBug::kNoParkReply,
        ModelBug::kUndeclaredRecv, ModelBug::kNoFinalAbort}) {
    if (name == model_bug_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

ModelResult run_model(const ModelConfig& config) {
  ModelConfig c = config;
  if (c.workers < 1) c.workers = 1;
  if (c.workers > 3) c.workers = 3;
  if (c.drops < 0) c.drops = 0;
  if (c.drops > 3) c.drops = 3;
  if (c.crashes < 0) c.crashes = 0;
  if (c.crashes > 3) c.crashes = 3;
  Explorer e(c);
  e.run();
  return e.res;
}

std::vector<ModelBugFixture> model_bug_fixtures() {
  const auto cfg = [](int workers, int drops, int crashes, ModelBug bug) {
    ModelConfig c;
    c.workers = workers;
    c.drops = drops;
    c.crashes = crashes;
    c.bug = bug;
    return c;
  };
  return {
      {ModelBug::kNoRetransmit, cfg(1, 1, 0, ModelBug::kNoRetransmit), "P4"},
      {ModelBug::kNoCachedReply, cfg(2, 1, 0, ModelBug::kNoCachedReply),
       "P4"},
      {ModelBug::kNoDeathTerminate,
       cfg(2, 1, 0, ModelBug::kNoDeathTerminate), "P4"},
      {ModelBug::kNoParkReply, cfg(2, 0, 0, ModelBug::kNoParkReply), "P4"},
      {ModelBug::kUndeclaredRecv, cfg(2, 0, 0, ModelBug::kUndeclaredRecv),
       "P3"},
      {ModelBug::kNoFinalAbort, cfg(1, 0, 1, ModelBug::kNoFinalAbort), "P1"},
  };
}

}  // namespace pgasm::verify
