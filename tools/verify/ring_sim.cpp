#include "ring_sim.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "vmpi/ring_core.hpp"

namespace pgasm::verify {

namespace {

using pgasm::vmpi::RingCore;
using pgasm::vmpi::RingOrder;
using pgasm::vmpi::RingSite;

constexpr int kProducer = 0;
constexpr int kConsumer = 1;
constexpr int kCellHead = 0;
constexpr int kCellTail = 1;
constexpr std::size_t kMaxCap = 8;

RingSite mutation_site(RingMutation m) {
  switch (m) {
    case RingMutation::kPushLoadHead: return RingSite::kPushLoadHead;
    case RingMutation::kPushStoreTail: return RingSite::kPushStoreTail;
    case RingMutation::kPopLoadTail: return RingSite::kPopLoadTail;
    case RingMutation::kPopStoreHead: return RingSite::kPopStoreHead;
    case RingMutation::kNone: break;
  }
  return RingSite::kPushLoadTail;  // never a mutation target
}

const char* site_name(RingSite s) {
  switch (s) {
    case RingSite::kPushLoadHead: return "push-load-head";
    case RingSite::kPushLoadTail: return "push-load-tail";
    case RingSite::kPushStoreTail: return "push-store-tail";
    case RingSite::kPopLoadTail: return "pop-load-tail";
    case RingSite::kPopLoadHead: return "pop-load-head";
    case RingSite::kPopStoreHead: return "pop-store-head";
  }
  return "?";
}

const char* tid_name(int tid) {
  return tid == kProducer ? "producer" : "consumer";
}

using Clock = std::array<std::uint64_t, 2>;

void join_clock(Clock& into, const Clock& from) {
  for (std::size_t i = 0; i < 2; ++i) into[i] = std::max(into[i], from[i]);
}

enum ThreadState : int {
  kRunning = 0,
  kAnnounced = 1,
  kBlocked = 2,
  kFinished = 3,
};

/// One committed atomic cell (head or tail) plus the release clock of the
/// store that produced the committed value (absent after a relaxed store).
struct Cell {
  std::uint64_t value = 0;
  Clock vc{};
  bool has_vc = false;
  std::uint64_t version = 0;  ///< bumped on every commit (unblock guard)
};

/// A thread's single-slot store buffer. Consecutive stores to the same
/// cell coalesce (last value wins, as on real hardware); a flush commits
/// the latest value and clears the slot.
struct StoreBuffer {
  bool pending = false;
  int cell = 0;
  std::uint64_t value = 0;
  RingOrder order = RingOrder::kRelaxed;
  Clock vc{};
};

/// FastTrack-style access history for one ring byte slot.
struct SlotHistory {
  int write_tid = -1;
  std::uint64_t write_epoch = 0;
  std::array<std::uint64_t, 2> read_epoch{};
};

struct Sim;

/// The virtual-scheduler facade RingCore is instantiated with. AtomicU64
/// is just a cell id; the committed values, store buffers and clocks all
/// live in the Sim.
struct SimFacade {
  struct SimAtomic {
    int id;
  };
  using AtomicU64 = SimAtomic;

  Sim* sim = nullptr;

  std::uint64_t load(AtomicU64& a, RingOrder order, RingSite site);
  void store(AtomicU64& a, std::uint64_t v, RingOrder order, RingSite site);
  void copy(std::byte* dst, const std::byte* src, std::size_t n);
};

struct Sim {
  RingSimConfig cfg;
  RingSite mutated;
  bool has_mutation;

  std::mutex mu;
  std::condition_variable cv;

  // -- Per-schedule state (reset() before each schedule).
  std::array<Cell, 2> cells;               // [head, tail]
  std::array<StoreBuffer, 2> buffers;      // per thread
  std::array<Clock, 2> clocks;             // per thread vector clock
  std::array<int, 2> tstate{};             // ThreadState
  std::array<std::uint64_t, 2> blocked_version{};
  int granted = -1;
  bool abort = false;

  std::array<std::byte, kMaxCap> buf{};    // the shared ring bytes
  std::array<SlotHistory, kMaxCap> slots{};
  std::vector<std::byte> popped;

  bool violated = false;
  std::string violation_slug;
  std::string violation_msg;
  std::vector<std::string> trace;

  // -- Replay-DFS bookkeeping (persists across schedules).
  std::vector<int> prefix;        // decisions to replay
  std::vector<int> chosen;        // decisions taken this schedule
  std::vector<int> enabled_count; // choice-set size at each decision
  std::uint64_t schedules = 0;
  std::uint64_t decisions_total = 0;

  explicit Sim(const RingSimConfig& c)
      : cfg(c),
        mutated(mutation_site(c.mutate)),
        has_mutation(c.mutate != RingMutation::kNone) {}

  RingOrder effective(RingOrder declared, RingSite site) const {
    if (has_mutation && site == mutated) return RingOrder::kRelaxed;
    return declared;
  }

  void reset() {
    cells = {};
    buffers = {};
    clocks = {};
    tstate = {};
    blocked_version = {};
    granted = -1;
    abort = false;
    buf = {};
    slots = {};
    popped.clear();
    trace.clear();
    chosen.clear();
    enabled_count.clear();
  }

  // Must hold mu.
  void violate(const std::string& slug, const std::string& msg) {
    if (violated) return;
    violated = true;
    violation_slug = slug;
    violation_msg = msg;
    trace.push_back("VIOLATION: " + msg);
    abort = true;
    cv.notify_all();
  }

  /// True for the two sites that read the PEER's cursor: the only loads
  /// whose result depends on scheduling, hence the only announced steps.
  static bool is_branching(RingSite site) {
    return site == RingSite::kPushLoadHead || site == RingSite::kPopLoadTail;
  }

  static int tid_of(RingSite site) {
    switch (site) {
      case RingSite::kPushLoadHead:
      case RingSite::kPushLoadTail:
      case RingSite::kPushStoreTail: return kProducer;
      default: return kConsumer;
    }
  }

  // Called by a worker thread with mu held: announce a branching step and
  // wait for the controller's grant.
  void await_grant(std::unique_lock<std::mutex>& lk, int tid) {
    tstate[static_cast<std::size_t>(tid)] = kAnnounced;
    cv.notify_all();
    cv.wait(lk, [&] { return granted == tid || abort; });
    if (granted == tid) granted = -1;
    tstate[static_cast<std::size_t>(tid)] = kRunning;
    cv.notify_all();
  }

  // Worker thread: the ring is full/empty; park until the peer's cursor
  // commit changes the answer (or the schedule aborts).
  void block(int tid) {
    std::unique_lock<std::mutex> lk(mu);
    const int peer_cell = tid == kProducer ? kCellHead : kCellTail;
    blocked_version[static_cast<std::size_t>(tid)] =
        cells[static_cast<std::size_t>(peer_cell)].version;
    trace.push_back(std::string(tid_name(tid)) + " blocked (" +
                    (tid == kProducer ? "ring full" : "ring empty") + ")");
    tstate[static_cast<std::size_t>(tid)] = kBlocked;
    cv.notify_all();
    cv.wait(lk, [&] { return granted == tid || abort; });
    if (granted == tid) granted = -1;
    tstate[static_cast<std::size_t>(tid)] = kRunning;
    cv.notify_all();
  }

  void finish(int tid) {
    std::lock_guard<std::mutex> lk(mu);
    tstate[static_cast<std::size_t>(tid)] = kFinished;
    cv.notify_all();
  }

  // Controller, mu held: commit thread `tid`'s buffered store.
  void flush(int tid) {
    StoreBuffer& b = buffers[static_cast<std::size_t>(tid)];
    Cell& c = cells[static_cast<std::size_t>(b.cell)];
    const char* cn = b.cell == kCellHead ? "head" : "tail";
    if (b.value <= c.value) {
      violate("cursor-regression",
              std::string(tid_name(tid)) + " commit of " + cn + "=" +
                  std::to_string(b.value) +
                  " does not advance past committed " +
                  std::to_string(c.value));
      return;
    }
    c.value = b.value;
    c.has_vc = b.order == RingOrder::kRelease;
    if (c.has_vc) c.vc = b.vc;
    ++c.version;
    trace.push_back("flush " + std::string(tid_name(tid)) + " " + cn +
                    " := " + std::to_string(b.value) +
                    (c.has_vc ? " (release)" : " (relaxed)"));
    b.pending = false;
    cv.notify_all();  // a blocked peer may now be schedulable
  }
};

std::uint64_t SimFacade::load(AtomicU64& a, RingOrder declared,
                              RingSite site) {
  Sim& s = *sim;
  const int tid = Sim::tid_of(site);
  const auto ti = static_cast<std::size_t>(tid);
  const RingOrder order = s.effective(declared, site);
  std::unique_lock<std::mutex> lk(s.mu);
  if (Sim::is_branching(site) && !s.abort) s.await_grant(lk, tid);
  ++s.clocks[ti][ti];
  StoreBuffer& b = s.buffers[ti];
  std::uint64_t v;
  if (b.pending && b.cell == a.id) {
    v = b.value;  // store-to-load forwarding from the own buffer
  } else {
    Cell& c = s.cells[static_cast<std::size_t>(a.id)];
    v = c.value;
    if (order == RingOrder::kAcquire && c.has_vc) {
      join_clock(s.clocks[ti], c.vc);
    }
  }
  if (Sim::is_branching(site)) {
    s.trace.push_back(std::string(tid_name(tid)) + " " +
                      (order == RingOrder::kAcquire ? "acquire" : "relaxed") +
                      "-load " + (a.id == kCellHead ? "head" : "tail") +
                      " -> " + std::to_string(v) + " [" + site_name(site) +
                      "]");
  }
  return v;
}

void SimFacade::store(AtomicU64& a, std::uint64_t v, RingOrder declared,
                      RingSite site) {
  Sim& s = *sim;
  const int tid = Sim::tid_of(site);
  const auto ti = static_cast<std::size_t>(tid);
  const RingOrder order = s.effective(declared, site);
  std::lock_guard<std::mutex> lk(s.mu);
  ++s.clocks[ti][ti];
  StoreBuffer& b = s.buffers[ti];
  b.pending = true;  // coalesces with any unflushed store to the same cell
  b.cell = a.id;
  b.value = v;
  b.order = order;
  b.vc = s.clocks[ti];
}

void SimFacade::copy(std::byte* dst, const std::byte* src, std::size_t n) {
  if (n == 0) return;
  Sim& s = *sim;
  std::lock_guard<std::mutex> lk(s.mu);
  const std::byte* lo = s.buf.data();
  const std::byte* hi = lo + s.cfg.cap;
  // Which thread is copying follows from the direction: only try_push
  // writes INTO the ring, only try_pop reads OUT of it.
  const bool writes_ring = dst >= lo && dst < hi;
  const bool reads_ring = src >= lo && src < hi;
  if (!writes_ring && !reads_ring) {
    std::memcpy(dst, src, n);
    return;
  }
  const int tid = writes_ring ? kProducer : kConsumer;
  const auto ti = static_cast<std::size_t>(tid);
  ++s.clocks[ti][ti];
  const std::uint64_t epoch = s.clocks[ti][ti];
  for (std::size_t i = 0; i < n && !s.violated; ++i) {
    const std::size_t slot = writes_ring
                                 ? static_cast<std::size_t>(dst + i - lo)
                                 : static_cast<std::size_t>(src + i - lo);
    if (slot >= s.cfg.cap) continue;
    SlotHistory& h = s.slots[slot];
    if (h.write_tid >= 0 && h.write_tid != tid &&
        h.write_epoch >
            s.clocks[ti][static_cast<std::size_t>(h.write_tid)]) {
      s.violate("data-race",
                std::string(tid_name(tid)) + " plain " +
                    (writes_ring ? "write" : "read") + " of ring slot " +
                    std::to_string(slot) + " is not ordered after " +
                    tid_name(h.write_tid) +
                    "'s write — torn/unpublished bytes are observable" +
                    (s.has_mutation
                         ? std::string(" (site weakened to relaxed: ") +
                               site_name(s.mutated) + ")"
                         : ""));
      break;
    }
    if (writes_ring) {
      const auto peer = static_cast<std::size_t>(1 - tid);
      if (h.read_epoch[peer] > s.clocks[ti][peer]) {
        s.violate("data-race",
                  std::string(tid_name(tid)) + " plain write of ring slot " +
                      std::to_string(slot) + " is not ordered after " +
                      tid_name(1 - tid) +
                      "'s read — the slot is overwritten while still being "
                      "read" +
                      (s.has_mutation
                           ? std::string(" (site weakened to relaxed: ") +
                                 site_name(s.mutated) + ")"
                           : ""));
        break;
      }
      h.write_tid = tid;
      h.write_epoch = epoch;
    } else {
      h.read_epoch[ti] = epoch;
    }
  }
  std::memcpy(dst, src, n);
}

/// One schedule: spawn the two driver threads, control them with the
/// replay-DFS decision list, run the end-of-schedule functional checks.
void run_schedule(Sim& s) {
  s.reset();
  SimFacade facade{&s};
  SimFacade::AtomicU64 head{kCellHead};
  SimFacade::AtomicU64 tail{kCellTail};
  const int total = s.cfg.total_bytes;

  std::thread producer([&] {
    std::vector<std::byte> src(static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i) {
      src[static_cast<std::size_t>(i)] = static_cast<std::byte>(i + 1);
    }
    int produced = 0;
    while (produced < total) {
      {
        std::lock_guard<std::mutex> lk(s.mu);
        if (s.abort) break;
      }
      const std::size_t r = RingCore<SimFacade>::try_push(
          facade, head, tail, s.buf.data(), s.cfg.cap,
          src.data() + produced, 1);
      if (r == 0) {
        s.block(kProducer);
      } else {
        produced += static_cast<int>(r);
      }
    }
    s.finish(kProducer);
  });

  std::thread consumer([&] {
    std::byte out;
    int got = 0;
    while (got < total) {
      {
        std::lock_guard<std::mutex> lk(s.mu);
        if (s.abort) break;
      }
      const std::size_t r = RingCore<SimFacade>::try_pop(
          facade, head, tail, s.buf.data(), s.cfg.cap, &out, 1);
      if (r == 0) {
        s.block(kConsumer);
      } else {
        std::lock_guard<std::mutex> lk(s.mu);
        s.popped.push_back(out);
        ++got;
      }
    }
    s.finish(kConsumer);
  });

  // Controller.
  {
    std::unique_lock<std::mutex> lk(s.mu);
    int steps = 0;
    while (true) {
      s.cv.wait(lk, [&] {
        if (s.granted != -1) return false;
        for (int t = 0; t < 2; ++t) {
          if (s.tstate[static_cast<std::size_t>(t)] == kRunning) return false;
        }
        return true;
      });
      if (s.abort) break;
      const bool all_finished = s.tstate[0] == kFinished &&
                                s.tstate[1] == kFinished;
      if (all_finished) {
        // No loads remain: commit leftovers in a fixed order, no branching.
        for (int t = 0; t < 2 && !s.violated; ++t) {
          if (s.buffers[static_cast<std::size_t>(t)].pending) s.flush(t);
        }
        break;
      }
      if (++steps > s.cfg.max_steps) {
        s.violate("schedule-overrun", "schedule exceeded max_steps");
        break;
      }
      // Enumerate the enabled choices, deterministically ordered.
      enum ChoiceKind { kGrant, kFlush };
      struct Choice {
        ChoiceKind kind;
        int tid;
      };
      std::vector<Choice> choices;
      for (int t = 0; t < 2; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        if (s.tstate[ti] == kAnnounced) {
          choices.push_back({kGrant, t});
        } else if (s.tstate[ti] == kBlocked) {
          const int peer_cell = t == kProducer ? kCellHead : kCellTail;
          if (s.cells[static_cast<std::size_t>(peer_cell)].version !=
              s.blocked_version[ti]) {
            choices.push_back({kGrant, t});  // retry: the answer may change
          }
        }
      }
      for (int t = 0; t < 2; ++t) {
        if (s.buffers[static_cast<std::size_t>(t)].pending) {
          choices.push_back({kFlush, t});
        }
      }
      if (choices.empty()) {
        s.violate("wedge",
                  "both threads are stuck and nothing is schedulable");
        break;
      }
      const std::size_t decision = s.chosen.size();
      int pick = 0;
      if (decision < s.prefix.size()) pick = s.prefix[decision];
      s.chosen.push_back(pick);
      s.enabled_count.push_back(static_cast<int>(choices.size()));
      ++s.decisions_total;
      const Choice c = choices[static_cast<std::size_t>(pick)];
      if (c.kind == kFlush) {
        s.flush(c.tid);
      } else {
        s.granted = c.tid;
        s.cv.notify_all();
      }
    }
    // Drain: wake everyone so the workers run to completion unscheduled.
    s.abort = true;
    s.cv.notify_all();
  }
  producer.join();
  consumer.join();
  ++s.schedules;

  if (s.violated) return;

  // Functional end-state checks (main thread, workers joined).
  bool bytes_ok = s.popped.size() == static_cast<std::size_t>(total);
  for (std::size_t i = 0; bytes_ok && i < s.popped.size(); ++i) {
    bytes_ok = s.popped[i] == static_cast<std::byte>(i + 1);
  }
  if (!bytes_ok) {
    std::string got;
    for (const std::byte b : s.popped) {
      if (!got.empty()) got += ",";
      got += std::to_string(static_cast<int>(b));
    }
    s.violated = true;
    s.violation_slug = "frame-integrity";
    s.violation_msg = "popped bytes [" + got + "] != pushed sequence 1.." +
                      std::to_string(total) + " (lost/dup/reordered data)";
    s.trace.push_back("VIOLATION: " + s.violation_msg);
    return;
  }
  const std::uint64_t utotal = static_cast<std::uint64_t>(total);
  if (s.cells[kCellHead].value != utotal ||
      s.cells[kCellTail].value != utotal) {
    s.violated = true;
    s.violation_slug = "cursor-final";
    s.violation_msg =
        "final cursors head=" + std::to_string(s.cells[kCellHead].value) +
        " tail=" + std::to_string(s.cells[kCellTail].value) +
        " != total " + std::to_string(total);
    s.trace.push_back("VIOLATION: " + s.violation_msg);
  }
}

/// Advance the DFS: rewrite `prefix` to the next unexplored schedule.
/// Returns false when the tree is exhausted.
bool next_schedule(Sim& s) {
  int i = static_cast<int>(s.chosen.size()) - 1;
  while (i >= 0 &&
         s.chosen[static_cast<std::size_t>(i)] + 1 >=
             s.enabled_count[static_cast<std::size_t>(i)]) {
    --i;
  }
  if (i < 0) return false;
  s.prefix.assign(s.chosen.begin(), s.chosen.begin() + i);
  s.prefix.push_back(s.chosen[static_cast<std::size_t>(i)] + 1);
  return true;
}

}  // namespace

const char* ring_mutation_name(RingMutation m) {
  switch (m) {
    case RingMutation::kNone: return "none";
    case RingMutation::kPushLoadHead: return "push-load-head";
    case RingMutation::kPushStoreTail: return "push-store-tail";
    case RingMutation::kPopLoadTail: return "pop-load-tail";
    case RingMutation::kPopStoreHead: return "pop-store-head";
  }
  return "?";
}

bool parse_ring_mutation(const std::string& name, RingMutation* out) {
  for (const RingMutation m :
       {RingMutation::kNone, RingMutation::kPushLoadHead,
        RingMutation::kPushStoreTail, RingMutation::kPopLoadTail,
        RingMutation::kPopStoreHead}) {
    if (name == ring_mutation_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

RingSimResult run_ring_sim(const RingSimConfig& config) {
  RingSimConfig c = config;
  if (c.cap < 1) c.cap = 1;
  if (c.cap > kMaxCap) c.cap = kMaxCap;
  if (c.total_bytes < 1) c.total_bytes = 1;
  if (c.total_bytes > 16) c.total_bytes = 16;

  Sim s(c);
  RingSimResult r;
  while (true) {
    if (s.schedules >= c.max_schedules) {
      r.schedules = s.schedules;
      r.decisions = s.decisions_total;
      r.message = "schedule count exceeds max_schedules";
      return r;  // exhausted=false, property empty -> tool error
    }
    run_schedule(s);
    if (s.violated) {
      r.schedules = s.schedules;
      r.decisions = s.decisions_total;
      r.violation = s.violation_slug;
      r.message = s.violation_msg;
      r.trace = s.trace;
      return r;
    }
    if (!next_schedule(s)) break;
  }
  r.ok = true;
  r.exhausted = true;
  r.schedules = s.schedules;
  r.decisions = s.decisions_total;
  return r;
}

}  // namespace pgasm::verify
