// protocol_check: static exhaustiveness verifier for the declarative
// message protocols (tools layer of the static concurrency verification
// stack; see DESIGN.md sections 11 and 15).
//
// Two protocols are declared as data and verified here without running a
// single message exchange:
//
//   - the master-worker clustering protocol — MsgKind, kProtocol,
//     MasterState/kMasterTransitions, WorkerState/kWorkerTransitions, and
//     the receive-capability tables kMasterRecvs/kWorkerRecvs, all in
//     core/cluster_protocol.hpp;
//   - the fault-tolerant GST coordinator protocol — GstMsgKind and
//     kGstProtocol in gst/gst_protocol.hpp.
//
// The checks:
//
//   1. Table completeness: every kind has exactly one row, and every row
//      names an encoder, a decoder, a handler, a drop recovery path, and a
//      duplicate defence (empty cells fail).
//   2. Implementation cross-check: every named codec/handler identifier
//      actually exists in the implementation sources; every MasterState
//      and WorkerState has its [State::k*] marker in parallel_cluster.cpp.
//   3. State-machine reachability: the terminal state (kTerminate for the
//      master, kShutdown for the worker) is reachable from EVERY state (no
//      livelock by construction), every non-terminal state has an outgoing
//      edge, the terminal has none, and every state is entered by some
//      edge (or is the start state).
//   4. Receive-capability sanity: every message kind a side can receive
//      appears in that side's recv table, and every recv handler exists.
//
// The cheap structural invariants (row-per-kind, name agreement, distinct
// tags, tag-space disjointness, terminal reachability) are also
// static_asserts: breaking them fails this tool's *compilation*, which the
// tier-1 build runs before ctest ever gets to execute it.
//
// Deeper temporal properties (deadlock freedom of the COMPOSED machines
// under loss, reordering, and crashes) are out of scope here — that is
// tools/verify/pgasm-model's job.
//
// Exit codes follow pgasm-lint: 0 clean, 1 findings, 2 tool error.

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster_protocol.hpp"
#include "gst/gst_protocol.hpp"

namespace {

using pgasm::core::MasterState;
using pgasm::core::MsgKind;
using pgasm::core::WorkerState;
using pgasm::core::kAllMasterStates;
using pgasm::core::kAllMsgKinds;
using pgasm::core::kAllWorkerStates;
using pgasm::core::kMasterRecvs;
using pgasm::core::kMasterTransitions;
using pgasm::core::kProtocol;
using pgasm::core::kWorkerRecvs;
using pgasm::core::kWorkerTransitions;
using pgasm::core::master_state_name;
using pgasm::core::msg_kind_name;
using pgasm::core::msg_kind_of;
using pgasm::core::worker_state_name;
using pgasm::gst::GstMsgKind;
using pgasm::gst::kAllGstMsgKinds;
using pgasm::gst::kGstProtocol;
using pgasm::gst::gst_msg_kind_name;
using pgasm::gst::gst_msg_kind_of;

constexpr std::size_t kNumKinds = std::size(kAllMsgKinds);
constexpr std::size_t kNumStates = std::size(kAllMasterStates);
constexpr std::size_t kNumWorkerStates = std::size(kAllWorkerStates);
constexpr std::size_t kNumGstKinds = std::size(kAllGstMsgKinds);

constexpr bool str_eq(const char* a, const char* b) {
  for (; *a != '\0' && *a == *b; ++a, ++b) {
  }
  return *a == *b;
}

// --- Compile-time layer: clustering message table ---------------------------

constexpr bool kinds_have_unique_specs() {
  for (MsgKind kind : kAllMsgKinds) {
    int rows = 0;
    for (const auto& spec : kProtocol) {
      if (spec.kind == kind) ++rows;
    }
    if (rows != 1) return false;
  }
  return std::size(kProtocol) == kNumKinds;
}

constexpr bool spec_names_match() {
  for (const auto& spec : kProtocol) {
    if (!str_eq(spec.name, msg_kind_name(spec.kind))) return false;
  }
  return true;
}

constexpr bool tags_distinct_and_roundtrip() {
  for (MsgKind a : kAllMsgKinds) {
    for (MsgKind b : kAllMsgKinds) {
      if (a != b && pgasm::core::to_tag(a) == pgasm::core::to_tag(b)) {
        return false;
      }
    }
    const auto back = msg_kind_of(pgasm::core::to_tag(a));
    if (!back.has_value() || *back != a) return false;
  }
  return true;
}

// --- Compile-time layer: GST message table ----------------------------------

constexpr bool gst_kinds_have_unique_specs() {
  for (GstMsgKind kind : kAllGstMsgKinds) {
    int rows = 0;
    for (const auto& spec : kGstProtocol) {
      if (spec.kind == kind) ++rows;
    }
    if (rows != 1) return false;
  }
  return std::size(kGstProtocol) == kNumGstKinds;
}

constexpr bool gst_spec_names_match() {
  for (const auto& spec : kGstProtocol) {
    if (!str_eq(spec.name, gst_msg_kind_name(spec.kind))) return false;
  }
  return true;
}

constexpr bool gst_tags_distinct_and_roundtrip() {
  for (GstMsgKind a : kAllGstMsgKinds) {
    for (GstMsgKind b : kAllGstMsgKinds) {
      if (a != b && pgasm::gst::to_tag(a) == pgasm::gst::to_tag(b)) {
        return false;
      }
    }
    const auto back = gst_msg_kind_of(pgasm::gst::to_tag(a));
    if (!back.has_value() || *back != a) return false;
  }
  return true;
}

/// The two protocols share one vmpi tag namespace: their tag ranges must
/// never collide, or a probe in one layer could consume the other's
/// message.
constexpr bool tag_spaces_disjoint() {
  for (MsgKind a : kAllMsgKinds) {
    for (GstMsgKind b : kAllGstMsgKinds) {
      if (pgasm::core::to_tag(a) == pgasm::gst::to_tag(b)) return false;
    }
  }
  return true;
}

// --- Compile-time layer: state machines -------------------------------------

constexpr std::size_t state_index(MasterState s) {
  for (std::size_t i = 0; i < kNumStates; ++i) {
    if (kAllMasterStates[i] == s) return i;
  }
  return kNumStates;  // unreachable for declared states
}

constexpr std::size_t worker_state_index(WorkerState s) {
  for (std::size_t i = 0; i < kNumWorkerStates; ++i) {
    if (kAllWorkerStates[i] == s) return i;
  }
  return kNumWorkerStates;  // unreachable for declared states
}

/// Fixed-point reachability of kTerminate from every master state, walking
/// kMasterTransitions forward. Runs at compile time.
constexpr bool terminate_reachable_from_all() {
  constexpr MasterState target = MasterState::kTerminate;
  bool reaches[kNumStates] = {};
  reaches[state_index(target)] = true;
  for (std::size_t pass = 0; pass < kNumStates; ++pass) {
    for (const auto& t : kMasterTransitions) {
      if (reaches[state_index(t.to)]) reaches[state_index(t.from)] = true;
    }
  }
  for (bool r : reaches) {
    if (!r) return false;
  }
  return true;
}

/// Same fixed point for the worker machine: kShutdown from every state.
constexpr bool shutdown_reachable_from_all() {
  constexpr WorkerState target = WorkerState::kShutdown;
  bool reaches[kNumWorkerStates] = {};
  reaches[worker_state_index(target)] = true;
  for (std::size_t pass = 0; pass < kNumWorkerStates; ++pass) {
    for (const auto& t : kWorkerTransitions) {
      if (reaches[worker_state_index(t.to)]) {
        reaches[worker_state_index(t.from)] = true;
      }
    }
  }
  for (bool r : reaches) {
    if (!r) return false;
  }
  return true;
}

static_assert(kinds_have_unique_specs(),
              "every MsgKind needs exactly one kProtocol row");
static_assert(spec_names_match(),
              "kProtocol row names must agree with msg_kind_name()");
static_assert(tags_distinct_and_roundtrip(),
              "MsgKind tag values must be distinct and msg_kind_of-invertible");
static_assert(gst_kinds_have_unique_specs(),
              "every GstMsgKind needs exactly one kGstProtocol row");
static_assert(gst_spec_names_match(),
              "kGstProtocol row names must agree with gst_msg_kind_name()");
static_assert(gst_tags_distinct_and_roundtrip(),
              "GstMsgKind tag values must be distinct and "
              "gst_msg_kind_of-invertible");
static_assert(tag_spaces_disjoint(),
              "clustering and GST protocols must not share vmpi tags");
static_assert(terminate_reachable_from_all(),
              "kTerminate must be reachable from every MasterState");
static_assert(shutdown_reachable_from_all(),
              "kShutdown must be reachable from every WorkerState");

// --- Runtime layer (richer diagnostics than a static_assert can print) ------

int g_findings = 0;

void fail(const std::string& what) {
  std::cerr << "protocol_check: FAIL: " << what << '\n';
  ++g_findings;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "protocol_check: cannot read " << path << '\n';
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// "await_reply" -> "AwaitReply": recover the enumerator spelling from the
/// stable snake_case state name (markers use the enumerator spelling).
std::string camelize(const char* snake) {
  std::string out;
  bool up = true;
  for (const char* p = snake; *p != '\0'; ++p) {
    if (*p == '_') {
      up = true;
      continue;
    }
    out += up ? static_cast<char>(*p - 'a' + 'A') : *p;
    up = false;
  }
  return out;
}

void check_table_completeness() {
  for (const auto& spec : kProtocol) {
    const auto cell = [&](const char* field, const char* value) {
      if (value == nullptr || *value == '\0') {
        fail(std::string("kProtocol[") + spec.name + "]." + field +
             " is empty — every message kind must declare it");
      }
    };
    cell("direction", spec.direction);
    cell("encoder", spec.encoder);
    cell("decoder", spec.decoder);
    cell("handler", spec.handler);
    cell("on_drop", spec.on_drop);
    cell("on_duplicate", spec.on_duplicate);
  }
  for (const auto& spec : kGstProtocol) {
    const auto cell = [&](const char* field, const char* value) {
      if (value == nullptr || *value == '\0') {
        fail(std::string("kGstProtocol[") + spec.name + "]." + field +
             " is empty — every message kind must declare it");
      }
    };
    cell("direction", spec.direction);
    cell("encoder", spec.encoder);
    cell("decoder", spec.decoder);
    cell("handler", spec.handler);
    cell("on_drop", spec.on_drop);
    cell("on_duplicate", spec.on_duplicate);
  }
}

void check_identifiers_exist(const std::string& src_root) {
  // The searchable implementation surface for codec and handler names.
  const std::string haystack =
      slurp(src_root + "/src/core/wire.hpp") +
      slurp(src_root + "/src/core/cluster_protocol.hpp") +
      slurp(src_root + "/src/core/cluster_protocol.cpp") +
      slurp(src_root + "/src/vmpi/runtime.hpp");
  const auto present = [&](const std::string& table, const char* row,
                           const char* field, const char* ident,
                           const std::string& hay) {
    if (ident == nullptr || *ident == '\0') return;  // reported above
    // Strip a class qualifier: ReplyChannel::send -> send is declared.
    std::string name = ident;
    if (const auto pos = name.rfind("::"); pos != std::string::npos) {
      name = name.substr(pos + 2);
    }
    if (hay.find(name) == std::string::npos) {
      fail(table + "[" + row + "]." + field + " names '" + ident +
           "' but no such identifier exists in the protocol sources");
    }
  };
  for (const auto& spec : kProtocol) {
    present("kProtocol", spec.name, "encoder", spec.encoder, haystack);
    present("kProtocol", spec.name, "decoder", spec.decoder, haystack);
    present("kProtocol", spec.name, "handler", spec.handler, haystack);
  }
  // The GST protocol's implementation surface: the FT construction path
  // plus the vmpi comm forms it sends/receives with.
  const std::string gst_haystack =
      slurp(src_root + "/src/gst/gst_protocol.hpp") +
      slurp(src_root + "/src/gst/parallel_build.cpp") +
      slurp(src_root + "/src/vmpi/runtime.hpp");
  for (const auto& spec : kGstProtocol) {
    present("kGstProtocol", spec.name, "encoder", spec.encoder, gst_haystack);
    present("kGstProtocol", spec.name, "decoder", spec.decoder, gst_haystack);
    present("kGstProtocol", spec.name, "handler", spec.handler, gst_haystack);
  }
  // Receive-capability handlers must exist in the clustering sources.
  for (const auto& r : kWorkerRecvs) {
    present("kWorkerRecvs", worker_state_name(r.state), "handler", r.handler,
            haystack);
  }
  for (const auto& r : kMasterRecvs) {
    present("kMasterRecvs", master_state_name(r.state), "handler", r.handler,
            haystack);
  }
}

void check_state_markers(const std::string& src_root) {
  const std::string impl = slurp(src_root + "/src/core/parallel_cluster.cpp");
  for (MasterState s : kAllMasterStates) {
    const std::string marker =
        "[MasterState::k" + camelize(master_state_name(s)) + "]";
    if (impl.find(marker) == std::string::npos) {
      fail("master_loop has no '" + marker +
           "' marker — the implementation no longer maps onto the declared "
           "state machine (update kMasterTransitions or the markers)");
    }
  }
  for (WorkerState s : kAllWorkerStates) {
    const std::string marker =
        "[WorkerState::k" + camelize(worker_state_name(s)) + "]";
    if (impl.find(marker) == std::string::npos) {
      fail("worker_loop has no '" + marker +
           "' marker — the implementation no longer maps onto the declared "
           "state machine (update kWorkerTransitions or the markers)");
    }
  }
}

void check_state_machine() {
  // Terminal state emits nothing; every other state emits something.
  for (MasterState s : kAllMasterStates) {
    std::size_t out = 0;
    for (const auto& t : kMasterTransitions) {
      if (t.from == s) ++out;
    }
    if (s == MasterState::kTerminate) {
      if (out != 0) {
        fail("kTerminate has outgoing transitions — it must be terminal");
      }
    } else if (out == 0) {
      fail(std::string("state '") + master_state_name(s) +
           "' has no outgoing transition — the master would wedge there");
    }
  }
  // Every state is entered by some edge, or is the start state (kProbe).
  for (MasterState s : kAllMasterStates) {
    if (s == MasterState::kProbe) continue;
    const bool entered =
        std::any_of(std::begin(kMasterTransitions), std::end(kMasterTransitions),
                    [&](const auto& t) { return t.to == s; });
    if (!entered) {
      fail(std::string("state '") + master_state_name(s) +
           "' is never entered — dead state or missing transition");
    }
  }
  // Every transition condition is documented.
  for (const auto& t : kMasterTransitions) {
    if (t.on == nullptr || *t.on == '\0') {
      fail(std::string("transition ") + master_state_name(t.from) + " -> " +
           master_state_name(t.to) + " has no condition documented");
    }
  }
}

void check_worker_state_machine() {
  for (WorkerState s : kAllWorkerStates) {
    std::size_t out = 0;
    for (const auto& t : kWorkerTransitions) {
      if (t.from == s) ++out;
    }
    if (s == WorkerState::kShutdown) {
      if (out != 0) {
        fail("kShutdown has outgoing transitions — it must be terminal");
      }
    } else if (out == 0) {
      fail(std::string("worker state '") + worker_state_name(s) +
           "' has no outgoing transition — the worker would wedge there");
    }
  }
  // Every state is entered by some edge, or is the start state (kGenerate).
  for (WorkerState s : kAllWorkerStates) {
    if (s == WorkerState::kGenerate) continue;
    const bool entered =
        std::any_of(std::begin(kWorkerTransitions), std::end(kWorkerTransitions),
                    [&](const auto& t) { return t.to == s; });
    if (!entered) {
      fail(std::string("worker state '") + worker_state_name(s) +
           "' is never entered — dead state or missing transition");
    }
  }
  for (const auto& t : kWorkerTransitions) {
    if (t.on == nullptr || *t.on == '\0') {
      fail(std::string("worker transition ") + worker_state_name(t.from) +
           " -> " + worker_state_name(t.to) + " has no condition documented");
    }
  }
}

void check_recv_tables() {
  // Directionality: the worker only ever receives master->worker kinds, the
  // master only worker->master kinds (per the kProtocol direction cells).
  for (const auto& r : kWorkerRecvs) {
    const auto* spec = pgasm::core::find_spec(r.kind);
    if (spec != nullptr && std::string(spec->direction) != "master->worker") {
      fail(std::string("kWorkerRecvs declares the worker receiving '") +
           spec->name + "', but kProtocol says its direction is " +
           spec->direction);
    }
  }
  for (const auto& r : kMasterRecvs) {
    const auto* spec = pgasm::core::find_spec(r.kind);
    if (spec != nullptr && std::string(spec->direction) != "worker->master") {
      fail(std::string("kMasterRecvs declares the master receiving '") +
           spec->name + "', but kProtocol says its direction is " +
           spec->direction);
    }
  }
  // Coverage: every kind is receivable by its destination side somewhere.
  for (const auto& spec : kProtocol) {
    const bool to_worker = std::string(spec.direction) == "master->worker";
    bool covered = false;
    if (to_worker) {
      for (const auto& r : kWorkerRecvs) covered |= r.kind == spec.kind;
    } else {
      for (const auto& r : kMasterRecvs) covered |= r.kind == spec.kind;
    }
    if (!covered) {
      fail(std::string("message kind '") + spec.name +
           "' has no receive-capability row on its destination side — " +
           "nobody is declared to consume it");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Source root: argv[1] if given, else the configure-time tree (the ctest
  // registration passes it explicitly so installed builds work too).
  std::string src_root;
  if (argc > 1) {
    src_root = argv[1];
  } else {
#ifdef PGASM_SOURCE_ROOT
    src_root = PGASM_SOURCE_ROOT;
#else
    std::cerr << "protocol_check: no source root (pass it as argv[1])\n";
    return 2;
#endif
  }

  check_table_completeness();
  check_identifiers_exist(src_root);
  check_state_markers(src_root);
  check_state_machine();
  check_worker_state_machine();
  check_recv_tables();

  if (g_findings == 0) {
    std::cout << "protocol_check: OK — " << kNumKinds
              << " clustering message kinds, " << kNumGstKinds
              << " gst message kinds, " << kNumStates << " master states, "
              << kNumWorkerStates << " worker states, "
              << std::size(kMasterTransitions) + std::size(kWorkerTransitions)
              << " transitions; terminal state reachable from every state\n";
    return 0;
  }
  std::cerr << "protocol_check: " << g_findings << " finding(s)\n";
  return 1;
}
