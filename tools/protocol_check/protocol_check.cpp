// protocol_check: static exhaustiveness verifier for the master-worker
// message protocol (tools layer of the static concurrency verification
// stack; see DESIGN.md section 11).
//
// The protocol is declared as data — MsgKind, kProtocol, MasterState,
// kMasterTransitions in core/cluster_protocol.hpp — and this tool verifies
// the declarations against each other and against the implementation
// sources, without running a single message exchange:
//
//   1. Table completeness: every MsgKind has exactly one kProtocol row,
//      and every row names an encoder, a decoder, a handler, a drop
//      recovery path, and a duplicate defence (empty cells fail).
//   2. Implementation cross-check: every named codec/handler identifier
//      actually exists in core/wire.hpp, core/cluster_protocol.*, or the
//      vmpi comm surface; every MasterState has its [MasterState::k*]
//      marker in the master_loop implementation.
//   3. State-machine reachability: kTerminate is reachable from EVERY
//      state (no livelock by construction), every non-terminal state has
//      an outgoing edge, kTerminate has none, and every state is entered
//      by some edge (or is the start state).
//
// The cheap structural invariants (row-per-kind, name agreement, distinct
// tags, terminate reachability) are also static_asserts: breaking them
// fails this tool's *compilation*, which the tier-1 build runs before
// ctest ever gets to execute it.
//
// Exit codes follow pgasm-lint: 0 clean, 1 findings, 2 tool error.

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster_protocol.hpp"

namespace {

using pgasm::core::MasterState;
using pgasm::core::MsgKind;
using pgasm::core::kAllMasterStates;
using pgasm::core::kAllMsgKinds;
using pgasm::core::kMasterTransitions;
using pgasm::core::kProtocol;
using pgasm::core::master_state_name;
using pgasm::core::msg_kind_name;
using pgasm::core::msg_kind_of;
using pgasm::core::to_tag;

constexpr std::size_t kNumKinds = std::size(kAllMsgKinds);
constexpr std::size_t kNumStates = std::size(kAllMasterStates);

// --- Compile-time layer -----------------------------------------------------

constexpr bool kinds_have_unique_specs() {
  for (MsgKind kind : kAllMsgKinds) {
    int rows = 0;
    for (const auto& spec : kProtocol) {
      if (spec.kind == kind) ++rows;
    }
    if (rows != 1) return false;
  }
  return std::size(kProtocol) == kNumKinds;
}

constexpr bool spec_names_match() {
  for (const auto& spec : kProtocol) {
    const char* a = spec.name;
    const char* b = msg_kind_name(spec.kind);
    for (; *a != '\0' && *a == *b; ++a, ++b) {
    }
    if (*a != *b) return false;
  }
  return true;
}

constexpr bool tags_distinct_and_roundtrip() {
  for (MsgKind a : kAllMsgKinds) {
    for (MsgKind b : kAllMsgKinds) {
      if (a != b && to_tag(a) == to_tag(b)) return false;
    }
    const auto back = msg_kind_of(to_tag(a));
    if (!back.has_value() || *back != a) return false;
  }
  return true;
}

constexpr std::size_t state_index(MasterState s) {
  for (std::size_t i = 0; i < kNumStates; ++i) {
    if (kAllMasterStates[i] == s) return i;
  }
  return kNumStates;  // unreachable for declared states
}

/// Fixed-point reachability of `target` from every state, walking
/// kMasterTransitions forward. Runs at compile time.
constexpr bool terminate_reachable_from_all() {
  constexpr MasterState target = MasterState::kTerminate;
  bool reaches[kNumStates] = {};
  reaches[state_index(target)] = true;
  for (std::size_t pass = 0; pass < kNumStates; ++pass) {
    for (const auto& t : kMasterTransitions) {
      if (reaches[state_index(t.to)]) reaches[state_index(t.from)] = true;
    }
  }
  for (bool r : reaches) {
    if (!r) return false;
  }
  return true;
}

static_assert(kinds_have_unique_specs(),
              "every MsgKind needs exactly one kProtocol row");
static_assert(spec_names_match(),
              "kProtocol row names must agree with msg_kind_name()");
static_assert(tags_distinct_and_roundtrip(),
              "MsgKind tag values must be distinct and msg_kind_of-invertible");
static_assert(terminate_reachable_from_all(),
              "kTerminate must be reachable from every MasterState");

// --- Runtime layer (richer diagnostics than a static_assert can print) ------

int g_findings = 0;

void fail(const std::string& what) {
  std::cerr << "protocol_check: FAIL: " << what << '\n';
  ++g_findings;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "protocol_check: cannot read " << path << '\n';
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void check_table_completeness() {
  for (const auto& spec : kProtocol) {
    const auto cell = [&](const char* field, const char* value) {
      if (value == nullptr || *value == '\0') {
        fail(std::string("kProtocol[") + spec.name + "]." + field +
             " is empty — every message kind must declare it");
      }
    };
    cell("direction", spec.direction);
    cell("encoder", spec.encoder);
    cell("decoder", spec.decoder);
    cell("handler", spec.handler);
    cell("on_drop", spec.on_drop);
    cell("on_duplicate", spec.on_duplicate);
  }
}

void check_identifiers_exist(const std::string& src_root) {
  // The searchable implementation surface for codec and handler names.
  const std::string haystack =
      slurp(src_root + "/src/core/wire.hpp") +
      slurp(src_root + "/src/core/cluster_protocol.hpp") +
      slurp(src_root + "/src/core/cluster_protocol.cpp") +
      slurp(src_root + "/src/vmpi/runtime.hpp");
  for (const auto& spec : kProtocol) {
    const auto present = [&](const char* field, const char* ident) {
      if (ident == nullptr || *ident == '\0') return;  // reported above
      // Strip a class qualifier: ReplyChannel::send -> send is declared.
      std::string name = ident;
      if (const auto pos = name.rfind("::"); pos != std::string::npos) {
        name = name.substr(pos + 2);
      }
      if (haystack.find(name) == std::string::npos) {
        fail(std::string("kProtocol[") + spec.name + "]." + field + " names '" +
             ident + "' but no such identifier exists in the protocol sources");
      }
    };
    present("encoder", spec.encoder);
    present("decoder", spec.decoder);
    present("handler", spec.handler);
  }
}

void check_state_markers(const std::string& src_root) {
  const std::string impl = slurp(src_root + "/src/core/parallel_cluster.cpp");
  for (MasterState s : kAllMasterStates) {
    const std::string marker =
        std::string("[MasterState::k") + [&] {
          // probe -> Probe etc.: markers use the enumerator spelling.
          std::string n = master_state_name(s);
          n[0] = static_cast<char>(n[0] - 'a' + 'A');
          return n;
        }() + "]";
    if (impl.find(marker) == std::string::npos) {
      fail("master_loop has no '" + marker +
           "' marker — the implementation no longer maps onto the declared "
           "state machine (update kMasterTransitions or the markers)");
    }
  }
}

void check_state_machine() {
  // Terminal state emits nothing; every other state emits something.
  for (MasterState s : kAllMasterStates) {
    std::size_t out = 0;
    for (const auto& t : kMasterTransitions) {
      if (t.from == s) ++out;
    }
    if (s == MasterState::kTerminate) {
      if (out != 0) {
        fail("kTerminate has outgoing transitions — it must be terminal");
      }
    } else if (out == 0) {
      fail(std::string("state '") + master_state_name(s) +
           "' has no outgoing transition — the master would wedge there");
    }
  }
  // Every state is entered by some edge, or is the start state (kProbe).
  for (MasterState s : kAllMasterStates) {
    if (s == MasterState::kProbe) continue;
    const bool entered =
        std::any_of(std::begin(kMasterTransitions), std::end(kMasterTransitions),
                    [&](const auto& t) { return t.to == s; });
    if (!entered) {
      fail(std::string("state '") + master_state_name(s) +
           "' is never entered — dead state or missing transition");
    }
  }
  // Every transition condition is documented.
  for (const auto& t : kMasterTransitions) {
    if (t.on == nullptr || *t.on == '\0') {
      fail(std::string("transition ") + master_state_name(t.from) + " -> " +
           master_state_name(t.to) + " has no condition documented");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Source root: argv[1] if given, else the configure-time tree (the ctest
  // registration passes it explicitly so installed builds work too).
  std::string src_root;
  if (argc > 1) {
    src_root = argv[1];
  } else {
#ifdef PGASM_SOURCE_ROOT
    src_root = PGASM_SOURCE_ROOT;
#else
    std::cerr << "protocol_check: no source root (pass it as argv[1])\n";
    return 2;
#endif
  }

  check_table_completeness();
  check_identifiers_exist(src_root);
  check_state_markers(src_root);
  check_state_machine();

  if (g_findings == 0) {
    std::cout << "protocol_check: OK — " << kNumKinds << " message kinds, "
              << kNumStates << " master states, "
              << std::size(kMasterTransitions)
              << " transitions; terminate reachable from every state\n";
    return 0;
  }
  std::cerr << "protocol_check: " << g_findings << " finding(s)\n";
  return 1;
}
