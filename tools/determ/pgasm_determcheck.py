#!/usr/bin/env python3
"""pgasm-determcheck: static determinism analysis for the bit-identical
contigs invariant (DESIGN.md §16).

Every hard guarantee this repo makes — chaos recovery, checkpoint resume,
thread-vs-proc transport equivalence — is phrased as "contigs are
bit-identical". The dynamic gates (chaos seeds, proc-smoke diffs,
test_determinism) only exercise the schedules they happen to run; this
tool statically rejects whole *classes* of nondeterminism by tracking
known nondeterminism sources toward output-affecting sinks (wire encodes,
contig emission, checkpoint/manifest writes, summary folds).

Checks
------
W016  unordered-iteration order: iterating a std::unordered_map/set
      (range-for or explicit .begin()) observes hash-bucket order, which
      varies with the hash seed, the load factor and the libstdc++
      version. Anything derived from that order — emission sequence,
      fingerprints, fold results — differs run to run. Iterate a
      util::sorted_items() snapshot instead; genuinely order-independent
      folds are waived with `pgasm-lint: allow(unordered-iter): <why>`.
W017  pointer identity: a pointer value used as a map/set key, hashed
      (std::hash<T*>), cast to an integer (reinterpret_cast<uintptr_t>)
      or formatted into output (%p, streamed void*) encodes an address.
      Addresses differ run to run under ASLR and are FATAL under
      ProcTransport, where every rank has its own address space — two
      ranks disagree about the same logical object. Key by stable ids.
W018  floating-point fold order: float/double addition does not
      reassociate. A float-typed cross-rank allreduce, a float
      accumulation inside an unordered-container loop, or a float
      std::accumulate over an unordered range produces different rounded
      bits when the combination order changes. Use integer payloads on
      the wire, or util::ordered_reduce() over a deterministically
      ordered vector; waive with `pgasm-lint: allow(fp-fold): <why>`.
W019  unseeded entropy: std::random_device, rand()/srand(), std::mt19937
      constructed from entropy, and raw time reads (steady_clock::now,
      clock_gettime, gettimeofday, time(nullptr)) flowing into
      algorithmic decisions make the run a function of the wall clock.
      Algorithms draw randomness from util::Prng with an explicit seed;
      time stays inside the observability and transport-deadline layers
      (src/obs/, src/vmpi/, src/util/timer.hpp), which never feed
      contigs. Elsewhere: `pgasm-lint: allow(entropy): <why>`.

Source -> sink model: the analyzer is deliberately conservative about
sinks. Rather than proving reachability, it treats every function under
src/ as potentially output-affecting (in this codebase nearly everything
feeds the contig stream, a checkpoint frame, or a summary the perf gate
diffs). Precision comes from the *source* side — recognizing the
canonicalization vocabulary (sorted_items / ordered_reduce / util::Prng /
the approved time layers) — plus per-site waivers for the rest. See
DESIGN.md §16 for what this does and does not prove.

Front-ends: the built-in tokenizer front-end computes all facts from
source text (declarations resolved through the project include graph).
When a clang compiler is available (and unless --frontend=lexer), an
`-ast-dump=json` pass re-derives the W016 range-for facts and adds
anything the lexer missed (macro-hidden loops, multi-line declarations);
AST facts are cached per file content hash under build/.ast_cache.

Exit status: 0 clean, 1 findings, 2 tool error.

Output: human-readable text by default; `--format=json` emits the same
finding schema as pgasm-lint (version/root/checks/count/findings with
stable content-hashed IDs, prefix PD-).

Waivers share the pgasm-lint syntax: `pgasm-lint: allow(<slug>): <reason>`
on the offending line or the contiguous comment block above it. Slugs:
unordered-iter, ptr-identity, fp-fold, entropy.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

FINDINGS: list[dict] = []

# The remediation vocabulary itself must iterate the containers it
# snapshots; like util/thread_annotations.hpp for the lock checks, it is
# the one file the source rules do not apply to.
SHIM_REL = Path("util/deterministic.hpp")

# Directories / files whose *job* is reading the clock: observability
# timestamps never feed contigs, and the transport layer needs deadlines
# for its timeout machinery (recv_timeout, probe_timeout). Mirrors the
# W008/W013 src/vmpi/ exemption.
TIME_APPROVED_DIRS = {"obs", "vmpi"}
TIME_APPROVED_FILES = {Path("util/timer.hpp")}

# Module -> the output-affecting sink its data feeds, for messages. The
# mapping is descriptive (it names the nearest sink), not a reachability
# proof — see the module docstring.
MODULE_SINKS = {
    "align": "overlap scores feeding contig consensus",
    "core": "wire encodes and checkpoint/manifest frames",
    "gst": "the promising-pair stream ordering alignment work",
    "obs": "run summaries the perf gate diffs",
    "olc": "contig emission",
    "pipeline": "contig emission and the run summary",
    "preprocess": "the masked fragment stream feeding clustering",
    "seq": "the fragment store every downstream stage reads",
    "sim": "simulated inputs (must replay bit-identically from a seed)",
    "util": "shared vocabulary used by every sink",
    "vmpi": "message payloads and delivery bookkeeping",
}


def finding(path: Path, line_no: int, check: str, slug: str, msg: str) -> None:
    try:
        rel = str(path.relative_to(REPO))
    except ValueError:
        rel = str(path)
    # Stable ID: hash of what the finding says, not where it says it; an
    # occurrence ordinal disambiguates identical findings in one file.
    basis = f"{check}:{slug}:{rel}:{msg}"
    ordinal = sum(1 for f in FINDINGS
                  if f["check"] == check and f["path"] == rel
                  and f["message"] == msg)
    fid = "PD-" + hashlib.sha256(
        f"{basis}#{ordinal}".encode()).hexdigest()[:12]
    FINDINGS.append({
        "id": fid,
        "check": check,
        "slug": slug,
        "path": rel,
        "line": line_no,
        "message": msg,
    })


def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def waived(lines: list[str], idx: int, slug: str) -> bool:
    needle = f"pgasm-lint: allow({slug})"
    if needle in lines[idx]:
        return True
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if needle in lines[j]:
            return True
        j -= 1
    return False


def strip_comments(line: str) -> str:
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def src_files(*suffixes: str) -> list[Path]:
    out: list[Path] = []
    for s in suffixes:
        out.extend(sorted(SRC.rglob(f"*{s}")))
    return out


def is_shim(path: Path) -> bool:
    try:
        return path.relative_to(SRC) == SHIM_REL
    except ValueError:
        return False


def sink_for(path: Path) -> str:
    try:
        module = path.relative_to(SRC).parts[0]
    except (ValueError, IndexError):
        module = ""
    return MODULE_SINKS.get(module, "downstream output")


# --------------------------------------------------------------------------
# Symbol table: which names are std::unordered_* containers, resolved
# through the project include graph so a member declared in foo.hpp is
# recognized when foo.cpp (or anything including foo.hpp) iterates it.
# --------------------------------------------------------------------------

UNORDERED_OPEN_RE = re.compile(r"\bstd::unordered_(map|set)\s*<")
PROJECT_INCLUDE_RE = re.compile(r'^\s*#include\s*"([^"]+)"')


def match_template_args(text: str, open_idx: int) -> tuple[str, int] | None:
    """Given text and the index of '<', return (args, index_after_'>') by
    bracket matching, or None when the declaration spans lines."""
    depth = 0
    for i in range(open_idx, len(text)):
        ch = text[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i], i + 1
    return None


def unordered_decls_in_line(line: str) -> list[tuple[str, str, str]]:
    """(kind, template_args, declared_name) for each single-line
    `std::unordered_map/set<...> name ...` declaration in the line."""
    out: list[tuple[str, str, str]] = []
    for m in UNORDERED_OPEN_RE.finditer(line):
        parsed = match_template_args(line, m.end() - 1)
        if parsed is None:
            continue
        args, after = parsed
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(\[]|$)", line[after:])
        if nm:
            out.append((m.group(1), args, nm.group(1)))
    return out


def first_template_arg(args: str) -> str:
    """The key type of a template argument list (up to the top-level comma)."""
    depth = 0
    for i, ch in enumerate(args):
        if ch in "<(":
            depth += 1
        elif ch in ">)":
            depth -= 1
        elif ch == "," and depth == 0:
            return args[:i]
    return args


def build_symbol_table(files: list[Path]) -> dict[Path, set[str]]:
    """Path -> names visible in that file that are unordered containers
    (declared there or in any transitively included project header)."""
    declared: dict[Path, set[str]] = {}
    includes: dict[Path, set[str]] = {}
    by_rel: dict[str, Path] = {}
    for path in files:
        rel = str(path.relative_to(SRC))
        by_rel[rel] = path
        names: set[str] = set()
        incs: set[str] = set()
        for raw in read_lines(path):
            im = PROJECT_INCLUDE_RE.match(raw)
            if im:
                incs.add(im.group(1))
            line = strip_comments(raw)
            for _, _, name in unordered_decls_in_line(line):
                names.add(name)
        declared[path] = names
        includes[path] = incs

    visible: dict[Path, set[str]] = {}
    for path in files:
        seen: set[str] = set()
        names = set(declared[path])
        stack = [str(path.relative_to(SRC))]
        while stack:
            rel = stack.pop()
            if rel in seen:
                continue
            seen.add(rel)
            p = by_rel.get(rel)
            if p is None:
                continue
            names |= declared[p]
            stack.extend(includes[p])
        visible[path] = names
    return visible


# --------------------------------------------------------------------------
# W016: unordered-container iteration order
# --------------------------------------------------------------------------

RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def range_expr_target(expr: str) -> str | None:
    """The identifier whose iteration order the range-for observes: the
    last identifier of the range expression (`counts`, `this->counts`,
    `obj.counts`). A call like sorted_items(c) or c.keys() returns a
    fresh container, so expressions ending in ')' resolve to None."""
    expr = expr.strip()
    if expr.endswith(")"):
        return None
    idents = IDENT_RE.findall(expr)
    return idents[-1] if idents else None


def check_w016() -> None:
    files = src_files(".cpp", ".hpp")
    table = build_symbol_table(files)
    for path in files:
        if is_shim(path):
            continue
        unordered = table[path]
        if not unordered:
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = RANGE_FOR_RE.search(line)
            if m and "sorted_items" not in m.group(1):
                name = range_expr_target(m.group(1))
                if (name in unordered
                        and not waived(lines, i, "unordered-iter")):
                    finding(path, i + 1, "W016", "unordered-iter",
                            f"range-for over unordered container '{name}' "
                            "observes hash-bucket order, which varies run "
                            f"to run and reaches {sink_for(path)}; iterate "
                            "util::sorted_items() or waive with "
                            "`pgasm-lint: allow(unordered-iter): <reason>`")
            for bm in BEGIN_CALL_RE.finditer(line):
                name = bm.group(1)
                if (name in unordered
                        and not waived(lines, i, "unordered-iter")):
                    finding(path, i + 1, "W016", "unordered-iter",
                            f"explicit iterator over unordered container "
                            f"'{name}' ({bm.group(0).strip()}...) observes "
                            "hash-bucket order, which varies run to run "
                            f"and reaches {sink_for(path)}; snapshot with "
                            "util::sorted_items() first")


# --------------------------------------------------------------------------
# W017: pointer identity in keys / hashes / output
# --------------------------------------------------------------------------

ORDERED_PTR_KEY_RE = re.compile(r"\bstd::(map|set)\s*<")
HASH_PTR_RE = re.compile(r"\bstd::hash\s*<[^>]*\*\s*(?:const\s*)?>")
UINTPTR_CAST_RE = re.compile(
    r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>")
PTR_FMT_RE = re.compile(r'"[^"]*%p[^"]*"')
VOID_STREAM_RE = re.compile(
    r"<<[^;]*\bstatic_cast\s*<\s*(?:const\s+)?void\s*\*\s*>")


def ptr_key_decls(line: str) -> list[str]:
    """Container spellings declared on this line whose KEY type is a
    pointer (std::unordered_map/set and std::map/set alike)."""
    out = []
    for kind, args, _name in unordered_decls_in_line(line):
        if "*" in first_template_arg(args):
            out.append(f"std::unordered_{kind}")
    for m in ORDERED_PTR_KEY_RE.finditer(line):
        parsed = match_template_args(line, m.end() - 1)
        if parsed and "*" in first_template_arg(parsed[0]):
            out.append(f"std::{m.group(1)}")
    return out


def check_w017() -> None:
    for path in src_files(".cpp", ".hpp"):
        if is_shim(path):
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)

            def report(what: str) -> None:
                finding(path, i + 1, "W017", "ptr-identity",
                        f"{what} — pointer values differ run to run under "
                        "ASLR and are fatal under ProcTransport (each rank "
                        "has its own address space), so anything keyed, "
                        "branched, or formatted from them diverges before "
                        f"it reaches {sink_for(path)}; key by stable "
                        "fragment/cluster ids instead")

            if waived(lines, i, "ptr-identity"):
                continue
            for spelled in ptr_key_decls(line):
                report(f"{spelled} keyed by a pointer type")
            if HASH_PTR_RE.search(line):
                report("std::hash over a pointer type")
            if UINTPTR_CAST_RE.search(line):
                report("pointer cast to an integer "
                       "(reinterpret_cast<uintptr_t>)")
            if PTR_FMT_RE.search(line):
                report("%p formats an address into output")
            if VOID_STREAM_RE.search(line):
                report("streaming a static_cast<void*> address into output")


# --------------------------------------------------------------------------
# W018: floating-point fold order
# --------------------------------------------------------------------------

FLOAT_ALLREDUCE_RE = re.compile(
    r"\ballreduce_(?:sum|max|min|vector)\s*<\s*(?:float|double)\b")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[={;,)]")
ACCUM_RE = re.compile(r"\b(\w+)\s*[+\-]=")
STD_ACCUMULATE_RE = re.compile(
    r"\bstd::accumulate\s*\(\s*([A-Za-z_]\w*)\s*\.\s*c?begin\b")
FLOAT_INIT_RE = re.compile(r"\b\d+\.\d*f?\b|\b\d+\.f\b")


def float_vars_in_file(lines: list[str]) -> set[str]:
    out: set[str] = set()
    for raw in lines:
        for m in FLOAT_DECL_RE.finditer(strip_comments(raw)):
            out.add(m.group(1))
    return out


def body_range(lines: list[str], start: int) -> tuple[int, int]:
    """(first, last) 0-based line range of the brace-delimited body that
    opens at/after `start` (single-statement bodies: just the next line)."""
    depth = 0
    opened = False
    for j in range(start, len(lines)):
        for ch in strip_comments(lines[j]):
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
        if opened and depth <= 0:
            return start, j
        if not opened and j > start:
            return start, min(j, len(lines) - 1)
    return start, len(lines) - 1


def check_w018() -> None:
    files = src_files(".cpp", ".hpp")
    table = build_symbol_table(files)
    for path in files:
        if is_shim(path):
            continue
        lines = read_lines(path)
        floats = float_vars_in_file(lines)
        unordered = table[path]
        for i, raw in enumerate(lines):
            line = strip_comments(raw)

            if (FLOAT_ALLREDUCE_RE.search(line)
                    and not waived(lines, i, "fp-fold")):
                finding(path, i + 1, "W018", "fp-fold",
                        "float-typed cross-rank allreduce — the reduction "
                        "order is a transport/topology property, so the "
                        "rounded bits can differ across rank counts and "
                        f"feed {sink_for(path)}; ship integer payloads, or "
                        "gather and util::ordered_reduce() on one rank")

            am = STD_ACCUMULATE_RE.search(line)
            if (am and am.group(1) in unordered
                    and FLOAT_INIT_RE.search(line)
                    and not waived(lines, i, "fp-fold")):
                finding(path, i + 1, "W018", "fp-fold",
                        f"float std::accumulate over unordered container "
                        f"'{am.group(1)}' — both the visit order and the "
                        "rounding it implies vary run to run; snapshot "
                        "with util::sorted_items() and fold with "
                        "util::ordered_reduce()")

            m = RANGE_FOR_RE.search(line)
            if not m or "sorted_items" in m.group(1):
                continue
            name = range_expr_target(m.group(1))
            if name not in unordered:
                continue
            first, last = body_range(lines, i)
            for j in range(first, last + 1):
                for acc in ACCUM_RE.finditer(strip_comments(lines[j])):
                    if (acc.group(1) in floats
                            and not waived(lines, j, "fp-fold")):
                        finding(path, j + 1, "W018", "fp-fold",
                                f"float accumulation into "
                                f"'{acc.group(1)}' inside iteration over "
                                f"unordered container '{name}' — the sum's "
                                "rounded bits depend on hash-bucket order "
                                f"and reach {sink_for(path)}; iterate "
                                "util::sorted_items() or fold with "
                                "util::ordered_reduce()")


# --------------------------------------------------------------------------
# W019: unseeded entropy / time-derived values
# --------------------------------------------------------------------------

ENTROPY_RES: list[tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device (hardware entropy)"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"),
     "std::mt19937 (use util::Prng with an explicit seed)"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\b\w+_clock::now\s*\("), "a raw clock read (*_clock::now)"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr)"),
]


def time_approved(path: Path) -> bool:
    try:
        rel = path.relative_to(SRC)
    except ValueError:
        return False
    return rel.parts[0] in TIME_APPROVED_DIRS or rel in TIME_APPROVED_FILES


def check_w019() -> None:
    for path in src_files(".cpp", ".hpp"):
        if is_shim(path) or time_approved(path):
            continue
        lines = read_lines(path)
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for pat, what in ENTROPY_RES:
                if pat.search(line) and not waived(lines, i, "entropy"):
                    finding(path, i + 1, "W019", "entropy",
                            f"{what} outside the approved time/entropy "
                            "layers (src/obs/, src/vmpi/, util/timer.hpp) "
                            "— a value derived from the wall clock or "
                            "hardware entropy flowing into algorithmic "
                            f"decisions makes {sink_for(path)} differ run "
                            "to run; draw from util::Prng with an explicit "
                            "seed, or keep the value observation-only and "
                            "waive with `pgasm-lint: allow(entropy): "
                            "<reason>`")


# --------------------------------------------------------------------------
# Optional clang AST front-end for W016 range-for facts, cached per file
# --------------------------------------------------------------------------
#
# The lexer facts always run; the AST pass only ADDS findings it derives
# from clang's desugared types (macro-hidden loops, declarations the
# single-line tokenizer cannot see). Extracted facts are cached under
# build/.ast_cache keyed by file content + compiler, so re-runs skip
# clang entirely for unchanged files.

def clang_binary() -> str | None:
    for name in ("clang++", "clang++-17", "clang++-16", "clang++-15",
                 "clang++-14", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def ast_walk(node: dict, visit) -> None:
    visit(node)
    for child in node.get("inner", []):
        if isinstance(child, dict):
            ast_walk(child, visit)


def ast_cache_dir() -> Path:
    return REPO / "build" / ".ast_cache"


def ast_facts(clang: str, path: Path) -> list[dict] | None:
    """[{'line': N, 'qual': <range var type>}] for every range-for whose
    range is an unordered container; cached by content hash. None on any
    clang failure (not cached, so a transient failure retries)."""
    key = hashlib.sha256(
        b"determ-v1\x00" + clang.encode() + b"\x00" +
        path.read_bytes()).hexdigest()
    cache = ast_cache_dir() / f"{key}.json"
    if cache.exists():
        try:
            return json.loads(cache.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            pass
    try:
        proc = subprocess.run(
            [clang, "-x", "c++", "-std=c++20", "-fsyntax-only",
             "-Xclang", "-ast-dump=json", "-I", str(SRC), str(path)],
            capture_output=True, text=True, timeout=120)
        if proc.returncode != 0 or not proc.stdout:
            return None
        root = json.loads(proc.stdout)
    except (subprocess.SubprocessError, json.JSONDecodeError, OSError):
        return None

    facts: list[dict] = []

    def visit(node: dict) -> None:
        if node.get("kind") != "CXXForRangeStmt":
            return
        line = (node.get("range", {}).get("begin") or {}).get("line", 0)
        for child in node.get("inner", []):
            if not isinstance(child, dict):
                continue
            if child.get("kind") != "DeclStmt":
                continue
            for decl in child.get("inner", []):
                if not isinstance(decl, dict):
                    continue
                qual = (decl.get("type") or {}).get("qualType", "")
                if "unordered_map" in qual or "unordered_set" in qual:
                    facts.append({"line": line, "qual": qual})

    ast_walk(root, visit)
    try:
        ast_cache_dir().mkdir(parents=True, exist_ok=True)
        cache.write_text(json.dumps(facts), encoding="utf-8")
    except OSError:
        pass
    return facts


def check_clang_ast() -> None:
    clang = clang_binary()
    if clang is None:
        return
    seen = {(f["check"], f["path"], f["line"]) for f in FINDINGS}
    for path in src_files(".cpp"):
        if is_shim(path):
            continue
        facts = ast_facts(clang, path)
        if facts is None:
            print(f"pgasm-determcheck: warning: clang AST pass failed on "
                  f"{path}; lexer facts stand", file=sys.stderr)
            continue
        lines = read_lines(path)
        rel = str(path.relative_to(REPO))
        for fact in facts:
            line = fact.get("line", 0)
            if not line or line > len(lines):
                continue
            # sorted_items() returns a std::vector; a range var whose
            # desugared type still names unordered_* iterates the raw
            # container.
            key = ("W016", rel, line)
            if key in seen or waived(lines, line - 1, "unordered-iter"):
                continue
            seen.add(key)
            finding(path, line, "W016", "unordered-iter",
                    f"range-for over unordered container (clang AST: "
                    f"{fact.get('qual', '?')!r}) observes hash-bucket "
                    f"order and reaches {sink_for(path)}; iterate "
                    "util::sorted_items()")


# --------------------------------------------------------------------------

CHECKS = {
    "W016": check_w016,
    "W017": check_w017,
    "W018": check_w018,
    "W019": check_w019,
}


def emit_text(selected: list[str]) -> None:
    for f in FINDINGS:
        print(f"{f['path']}:{f['line']}: [{f['check']}/{f['slug']}] "
              f"{f['message']} [{f['id']}]")
    n = len(FINDINGS)
    print(f"pgasm-determcheck: {n} finding{'s' if n != 1 else ''} "
          f"({', '.join(selected)})")


def emit_json(selected: list[str]) -> None:
    print(json.dumps({
        "version": 1,
        "root": str(REPO),
        "checks": selected,
        "count": len(FINDINGS),
        "findings": FINDINGS,
    }, indent=2))


def main() -> int:
    global REPO, SRC
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--only", metavar="WNNN", action="append",
                    help="run only these checks (repeatable)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--root", metavar="DIR", default=None,
                    help="repo root to analyze (default: this script's "
                    "repo); the fixture tests point it at mini-trees")
    ap.add_argument("--format", choices=("text", "json"), default="text",
                    help="output format (json carries stable finding IDs)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lexer"),
                    default="auto",
                    help="fact front-end: clang AST supplement when "
                    "available (auto/clang), tokenizer only (lexer)")
    args = ap.parse_args()

    if args.list_checks:
        for name in sorted(CHECKS):
            print(name)
        return 0

    if args.root is not None:
        REPO = Path(args.root).resolve()
        SRC = REPO / "src"
    if not SRC.is_dir():
        print(f"pgasm-determcheck: no src/ under {REPO}", file=sys.stderr)
        return 2

    selected = args.only or sorted(CHECKS)
    for name in selected:
        if name not in CHECKS:
            print(f"unknown check {name}", file=sys.stderr)
            return 2
    try:
        for name in selected:
            CHECKS[name]()
        if args.frontend in ("auto", "clang") and "W016" in selected:
            if args.frontend == "clang" and clang_binary() is None:
                print("pgasm-determcheck: --frontend=clang but no clang "
                      "on PATH", file=sys.stderr)
                return 2
            check_clang_ast()
    except OSError as e:
        print(f"pgasm-determcheck: tool error: {e}", file=sys.stderr)
        return 2

    if args.format == "json":
        emit_json(selected)
    else:
        emit_text(selected)
    return 1 if FINDINGS else 0


if __name__ == "__main__":
    sys.exit(main())
